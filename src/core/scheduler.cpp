#include "core/scheduler.hpp"

#include "util/assert.hpp"

namespace psched::core {

SinglePolicyScheduler::SinglePolicyScheduler(policy::PolicyTriple policy)
    : policy_(policy) {
  PSCHED_ASSERT(policy.provisioning && policy.job_selection && policy.vm_selection);
}

policy::PolicyTriple SinglePolicyScheduler::policy_for_tick(
    std::uint64_t /*tick*/, std::span<const policy::QueuedJob> /*queue*/,
    const cloud::CloudProfile& /*profile*/) {
  return policy_;
}

std::string SinglePolicyScheduler::name() const { return policy_.name(); }

PortfolioScheduler::PortfolioScheduler(const policy::Portfolio& portfolio,
                                       PortfolioSchedulerConfig config,
                                       util::ThreadPool* eval_pool)
    : portfolio_(portfolio),
      config_(config),
      selector_(portfolio, OnlineSimulator(config.online_sim), config.selector, eval_pool),
      reflection_(portfolio.size()),
      current_(portfolio.policies().front()) {
  PSCHED_ASSERT(config_.selection_period_ticks >= 1);
}

policy::PolicyTriple PortfolioScheduler::policy_for_tick(
    std::uint64_t tick, std::span<const policy::QueuedJob> queue,
    const cloud::CloudProfile& profile) {
  // An empty queue always defers selection to the next non-empty tick (the
  // previously selected policy keeps governing until then).
  if (queue.empty()) return current_;

  const WorkloadSignature signature = signature_of(queue, profile);
  bool due = false;
  if (config_.trigger == SelectionTrigger::kPeriodic) {
    due = tick >= next_selection_tick_;
  } else {
    due = !selected_once_ || signature != last_signature_ ||
          tick - last_selection_tick_ >= config_.max_stale_ticks;
  }
  if (due) {
    std::vector<std::size_t> hints;
    if (config_.use_reflection_hints) {
      hints = reflection_.top_for_context(signature_key(signature),
                                          config_.reflection_hint_count);
    }
    const SelectionResult result =
        selector_.select(queue, profile, current_index_, hints);
    reflection_.record(profile.now, result, signature_key(signature));
    current_index_ = result.best_index;
    current_ = portfolio_.policies()[result.best_index];
    next_selection_tick_ = tick + config_.selection_period_ticks;
    last_selection_tick_ = tick;
    last_signature_ = signature;
    selected_once_ = true;
  }
  return current_;
}

void PortfolioScheduler::capture_checkpoint_state(util::StateDigest& digest) const {
  digest.add_size("scheduler.current_index", current_index_);
  digest.add_u64("scheduler.next_selection_tick", next_selection_tick_);
  digest.add_bool("scheduler.selected_once", selected_once_);
  digest.add_u64("scheduler.last_selection_tick", last_selection_tick_);
  digest.add_u64("scheduler.last_signature", signature_key(last_signature_));
  selector_.capture_checkpoint_state(digest);
  reflection_.capture_digest(digest);
}

}  // namespace psched::core
