#include "core/trigger.hpp"

#include <algorithm>
#include <cmath>

namespace psched::core {

namespace {
/// floor(log2(x + 1)) for non-negative x; 0 -> 0, 1 -> 1, 2..3 -> 2, ...
std::int32_t log_bucket(double x) noexcept {
  if (x <= 0.0) return 0;
  return static_cast<std::int32_t>(std::floor(std::log2(x + 1.0)));
}
}  // namespace

WorkloadSignature signature_of(std::span<const policy::QueuedJob> queue,
                               const cloud::CloudProfile& profile) {
  WorkloadSignature sig;
  sig.queue_len = log_bucket(static_cast<double>(queue.size()));
  double procs = 0.0;
  double work_minutes = 0.0;
  double widest = 0.0;
  for (const policy::QueuedJob& job : queue) {
    procs += job.procs;
    work_minutes += job.procs * job.predicted_runtime / 60.0;
    widest = std::max(widest, static_cast<double>(job.procs));
  }
  sig.queued_procs = log_bucket(procs);
  sig.queued_work = log_bucket(work_minutes);
  sig.widest_job = log_bucket(widest);
  sig.idle_vms = log_bucket(static_cast<double>(profile.idle_count()));
  sig.unavailable_vms =
      log_bucket(static_cast<double>(profile.vms.size() - profile.idle_count()));
  return sig;
}

std::uint64_t signature_key(const WorkloadSignature& sig) noexcept {
  // Buckets are tiny (< 64); pack 6 x 8 bits.
  auto pack = [](std::int32_t v) {
    return static_cast<std::uint64_t>(std::clamp(v, 0, 255));
  };
  return pack(sig.queue_len) | pack(sig.queued_procs) << 8 |
         pack(sig.queued_work) << 16 | pack(sig.widest_job) << 24 |
         pack(sig.idle_vms) << 32 | pack(sig.unavailable_vms) << 40;
}

}  // namespace psched::core
