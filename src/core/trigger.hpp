#pragma once
// Workload-change detection — the paper's second future-work item:
// "develop an algorithm that can dynamically trigger the portfolio
// simulation process only when the workload pattern changes, thus reducing
// the number of invocations while preserving the performance."
//
// The detector reduces the (queue, cloud) state to a coarse signature of
// logarithmic buckets; the portfolio scheduler re-runs the selection only
// when the signature differs from the one at the previous selection (with a
// configurable maximum staleness as a safety net).

#include <compare>
#include <cstdint>
#include <span>

#include "cloud/profile.hpp"
#include "policy/context.hpp"

namespace psched::core {

/// Coarse description of a scheduling problem instance. Two instants with
/// equal signatures are "the same workload pattern" for triggering
/// purposes. Buckets are log2-scaled so that small absolute changes in a
/// large queue do not retrigger, while regime changes always do.
struct WorkloadSignature {
  std::int32_t queue_len = 0;     ///< log2 bucket of the queue length
  std::int32_t queued_procs = 0;  ///< log2 bucket of total requested procs
  std::int32_t queued_work = 0;   ///< log2 bucket of predicted work (minutes)
  std::int32_t widest_job = 0;    ///< log2 bucket of the widest queued job
  std::int32_t idle_vms = 0;      ///< log2 bucket of usable VMs
  std::int32_t unavailable_vms = 0;  ///< log2 bucket of busy+booting VMs

  friend auto operator<=>(const WorkloadSignature&, const WorkloadSignature&) = default;
};

/// Compute the signature of the current problem instance.
[[nodiscard]] WorkloadSignature signature_of(std::span<const policy::QueuedJob> queue,
                                             const cloud::CloudProfile& profile);

/// Stable 64-bit key for use in hash maps (reflection store contexts).
[[nodiscard]] std::uint64_t signature_key(const WorkloadSignature& sig) noexcept;

}  // namespace psched::core
