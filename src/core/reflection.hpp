#pragma once
// The reflection database of the abstract scheduling model (paper §2): every
// selection outcome is recorded so the scheduler's behaviour can be analyzed
// afterwards — which policies were chosen how often (Figure 5), how many
// selection processes ran (Figure 9d), and what the selection overhead was.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/selector.hpp"
#include "util/types.hpp"

namespace psched::core {

/// One recorded selection event.
struct SelectionRecord {
  SimTime when = 0.0;
  std::size_t chosen = 0;      ///< portfolio index of the applied policy
  double utility = 0.0;        ///< its simulated utility
  std::size_t simulated = 0;   ///< |Q| — policies evaluated this round
  double cost_ms = 0.0;        ///< budget consumed
  std::uint64_t context = 0;   ///< workload-signature key (see core/trigger.hpp)
};

class ReflectionStore {
 public:
  /// `portfolio_size` sizes the per-policy counters; `keep_history` bounds
  /// the stored record list (0 = keep everything).
  explicit ReflectionStore(std::size_t portfolio_size, std::size_t max_history = 0);

  /// Record a selection outcome; `context` tags it with the workload
  /// signature it was made under (0 = untagged).
  void record(SimTime when, const SelectionResult& result, std::uint64_t context = 0);

  /// The paper's reflection step: policies that historically won selections
  /// under workload context `context`, best first, at most `k`. Empty when
  /// the context has never been seen.
  [[nodiscard]] std::vector<std::size_t> top_for_context(std::uint64_t context,
                                                         std::size_t k) const;

  /// Number of selection processes run.
  [[nodiscard]] std::size_t invocations() const noexcept { return invocations_; }

  /// How often each policy was chosen (indexed like Portfolio::policies()).
  [[nodiscard]] const std::vector<std::size_t>& chosen_counts() const noexcept {
    return chosen_counts_;
  }

  /// chosen_counts normalized to fractions summing to 1 (all zeros when no
  /// selection has run) — the Figure-5 "ratio of invocations".
  [[nodiscard]] std::vector<double> invocation_ratios() const;

  /// Total and mean per-invocation selection cost (budget units, ms).
  [[nodiscard]] double total_cost_ms() const noexcept { return total_cost_ms_; }
  [[nodiscard]] double mean_simulated_per_invocation() const noexcept;

  [[nodiscard]] const std::vector<SelectionRecord>& history() const noexcept {
    return history_;
  }

  /// Checkpoint support (DESIGN.md §14): fold the deterministic reflection
  /// state — invocation counters, per-policy chosen counts, and the
  /// per-context win tables that feed reflection hints — into `digest`.
  /// Wall-clock cost totals are excluded (psched-lint D1): they vary run to
  /// run in measured mode and are derived state in deterministic modes.
  void capture_digest(util::StateDigest& digest) const;

 private:
  std::size_t max_history_;
  std::size_t invocations_ = 0;
  double total_cost_ms_ = 0.0;
  std::size_t total_simulated_ = 0;
  std::vector<std::size_t> chosen_counts_;
  std::vector<SelectionRecord> history_;
  // context key -> (policy index -> times chosen under that context)
  std::unordered_map<std::uint64_t, std::unordered_map<std::size_t, std::size_t>>
      context_wins_;
};

}  // namespace psched::core
