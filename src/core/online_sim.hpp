#pragma once
// The portfolio's online simulator (paper §3.3): given the queued jobs and a
// snapshot of the cloud, deterministically simulate one candidate policy
// until the queue drains, and score it with the utility function.
//
// This is intentionally NOT the outer DGSim-style engine: it is a tight,
// allocation-light loop over plain vectors (the selection step runs it up to
// 60 times per scheduling decision). Jobs run for their *predicted* runtime
// — the simulator must not peek at actual runtimes (paper evaluates exactly
// this information gap in §6.3).
//
// Cost accounting mirrors the outer engine's billing but only counts cost
// incurred *from the snapshot onward*: already-paid time on existing VMs is
// free, extending a VM past its paid boundary charges new hours, and fresh
// leases charge from their lease instant. VMs are released at the end of the
// inner run (and idle VMs at paid-hour boundaries along the way, like the
// engine's release rule).

#include <span>
#include <vector>

#include "cloud/profile.hpp"
#include "core/round_snapshot.hpp"
#include "core/sim_arena.hpp"
#include "metrics/utility.hpp"
#include "policy/allocation.hpp"
#include "policy/portfolio.hpp"
#include "validate/fault.hpp"

namespace psched::core {

/// When idle VMs are released (shared by the outer engine and the inner
/// simulation; the paper leaves this implicit — its ODA critique,
/// "resources charged for an entire hour may be released after just a few
/// minutes of use", implies surplus VMs do not linger).
enum class ReleaseRule {
  /// After each allocation pass, release every idle VM while no job is
  /// waiting (a waiting head job keeps the whole idle pool as its reserve).
  /// Default; matches the paper's cost narrative.
  kEagerSurplus,
  /// Hold idle VMs until just before their next hourly charge (the
  /// cost-aware rule of Genaud & Gossa); maximizes reuse of paid time.
  kBoundary,
};

/// How the ordered queue is served at each scheduling decision (see
/// policy/allocation.hpp: kHeadOfLine is the paper's non-backfilling mode,
/// kEasyBackfill the EASY extension the paper defers to future work).
using policy::AllocationMode;

/// How the inner simulation prices the VM time a candidate policy consumes.
enum class InnerCostModel {
  /// Rounded-up charged hours, exactly like the outer engine's billing.
  /// Default: under the eager release rule the engine really does pay the
  /// full started hour of a released VM, so this is the faithful model.
  kChargedHours,
  /// Paid time actually elapsed while the VM was held during the drain
  /// window (no rounding): the marginal cost attributable to this decision,
  /// treating unused tail-hours as available to future work. The better
  /// model when the engine runs the kBoundary release rule (the engine
  /// then amortizes tail-hours across future jobs, which rounded-hours
  /// scoring cannot see); see bench_ablation_costmodel.
  kElapsedMarginal,
};

struct OnlineSimConfig {
  metrics::UtilityParams utility;
  double slowdown_bound = 10.0;     ///< bounded-slowdown floor (s)
  double schedule_period = 20.0;    ///< decision cadence inside the sim (s)
  double release_window = 20.0;     ///< idle-release lookahead (s, kBoundary)
  ReleaseRule release_rule = ReleaseRule::kEagerSurplus;
  AllocationMode allocation = AllocationMode::kHeadOfLine;
  InnerCostModel cost_model = InnerCostModel::kChargedHours;
  std::size_t max_iterations = 2'000'000;  ///< hard safety valve
  /// Validation self-test switch: kCandidateThrow makes every simulate()
  /// call throw, so the selector's graceful-degradation path (quarantine +
  /// last-known-good policy) is itself testable. Always kNone outside
  /// validation tests; the other fault flavors are provider-level and
  /// ignored here.
  validate::FaultInjection inject_fault = validate::FaultInjection::kNone;
};

/// Result of simulating one policy on one problem instance.
struct SimOutcome {
  double utility = 0.0;
  double avg_bounded_slowdown = 1.0;
  double rj_proc_seconds = 0.0;
  /// Charged cost of the candidate's VM consumption. With pricing off this
  /// is plain charged seconds (the paper's RV). With pricing on
  /// (DESIGN.md §12) each VM's charged seconds are weighted by its
  /// effective price — family price at the snapshot's frozen market
  /// multiplier × tier fraction — so candidate scoring prefers cheap
  /// capacity; dollars = this / billing_quantum.
  double rv_charged_seconds = 0.0;
  double sim_makespan = 0.0;    ///< simulated seconds until the queue drained
  std::size_t decisions = 0;    ///< decision-loop iterations executed
};

/// Thread-safety: `simulate` is const-thread-safe — any number of threads
/// may call it concurrently on one OnlineSimulator instance (with the same
/// or different arguments), provided each concurrent call uses its own
/// SimArena (the span/profile overload allocates one internally). This is a
/// stated contract, not an accident: the simulator holds only the immutable
/// config, every piece of mutable scratch lives in the caller-supplied
/// arena, the RoundSnapshot is read-only during simulation, and the
/// policies it drives are stateless (`const` interfaces throughout
/// policy/*.hpp). The wave-parallel selector keeps one arena per wave slot;
/// the concurrency stress test in tests/core/selector_parallel_test.cpp
/// relies on this. Keep new scratch state inside SimArena when extending.
class OnlineSimulator {
 public:
  explicit OnlineSimulator(OnlineSimConfig config);

  [[nodiscard]] const OnlineSimConfig& config() const noexcept { return config_; }

  /// Simulate `policy` scheduling `queue` starting from `profile`.
  /// Deterministic: same inputs -> same outcome on every platform.
  /// Convenience wrapper over the snapshot/arena fast path below: builds a
  /// fresh RoundSnapshot and SimArena per call, so it is allocation-heavy
  /// but needs no caller-side state. Safe to call concurrently.
  [[nodiscard]] SimOutcome simulate(std::span<const policy::QueuedJob> queue,
                                    const cloud::CloudProfile& profile,
                                    const policy::PolicyTriple& policy) const;

  /// Fast path (DESIGN.md §11): simulate `policy` against a prebuilt round
  /// snapshot, using `arena` for every piece of mutable state. Bit-identical
  /// outcome to the wrapper above for the same (queue, profile) inputs. The
  /// snapshot may be shared across concurrent calls; the arena may not —
  /// one arena per concurrent caller.
  [[nodiscard]] SimOutcome simulate(const RoundSnapshot& snapshot,
                                    const policy::PolicyTriple& policy,
                                    SimArena& arena) const;

 private:
  OnlineSimConfig config_;  ///< immutable after construction
};

}  // namespace psched::core
