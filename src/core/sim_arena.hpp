#pragma once
// Reusable scratch arena for the online simulator's fast path (DESIGN.md
// §11). One SimArena holds every piece of mutable state a single inner
// simulation needs — the struct-of-arrays VM table, the pending queue, the
// availability view, the allocation plan and its scratch — as vectors that
// are cleared (capacity kept) between candidates instead of reallocated.
//
// The selector owns one arena per wave slot, so concurrent candidate
// evaluations never share an arena; the arena itself is strictly
// single-threaded state.

#include <cstdint>
#include <vector>

#include "cloud/pricing.hpp"
#include "policy/allocation.hpp"
#include "policy/job_selection.hpp"

namespace psched::core {

struct SimArena {
  // --- VM table, struct-of-arrays --------------------------------------
  // Rows are live VMs; the decision loop scans one column at a time
  // (availability for idle counts and time advance, busy for boot counts),
  // so columns keep those scans dense. Ids are assigned 0,1,2,... by the
  // simulation and never reused, so `vm_row` is a dense id -> row map that
  // survives swap-removal.
  std::vector<VmId> vm_id;
  std::vector<SimTime> vm_lease;
  std::vector<SimTime> vm_avail;
  std::vector<unsigned char> vm_fresh;  ///< leased during this simulation
  std::vector<unsigned char> vm_busy;   ///< has (ever) run a job
  std::vector<std::uint32_t> vm_row;    ///< VmId -> row (stale for removed ids)
  std::vector<std::uint32_t> vm_family;  ///< pricing: family index (0 off)
  std::vector<unsigned char> vm_tier;    ///< pricing: PurchaseTier (0 off)

  // --- per-decision working state ---------------------------------------
  std::vector<policy::QueuedJob> pending;  ///< the simulated queue (AoS: policy API)
  std::vector<policy::VmAvail> avail;      ///< availability view for the planner
  std::vector<unsigned char> served;       ///< queue-compaction mark bits
  policy::OrderScratch order;
  policy::AllocationScratch alloc;
  policy::AllocationPlan plan;
  std::vector<cloud::LeaseRequest> lease_requests;  ///< lease_plan scratch
  /// Mutable copy of the round's pricing view (pricing on only): the inner
  /// sim keeps reserved/family occupancy current as it leases and releases
  /// so tier-aware policies see live headroom. Market state stays frozen
  /// at the snapshot (DESIGN.md §12).
  cloud::PricingView pricing;

  [[nodiscard]] std::size_t vm_count() const noexcept { return vm_id.size(); }

  /// Start a new simulation: empty every container, keep every capacity.
  void reset() noexcept {
    vm_id.clear();
    vm_lease.clear();
    vm_avail.clear();
    vm_fresh.clear();
    vm_busy.clear();
    vm_row.clear();
    vm_family.clear();
    vm_tier.clear();
    pending.clear();
    avail.clear();
    served.clear();
    plan.clear();
    lease_requests.clear();
  }

  /// Append a VM row. `id` must be the next sequential id (the arena's
  /// id -> row map is positional at creation time).
  void push_vm(VmId id, SimTime lease, SimTime available, bool fresh, bool busy,
               std::uint32_t family = 0, unsigned char tier = 0) {
    vm_row.push_back(static_cast<std::uint32_t>(vm_id.size()));
    vm_id.push_back(id);
    vm_lease.push_back(lease);
    vm_avail.push_back(available);
    vm_fresh.push_back(fresh ? 1 : 0);
    vm_busy.push_back(busy ? 1 : 0);
    vm_family.push_back(family);
    vm_tier.push_back(tier);
  }

  /// Swap-remove the VM at `row` (same order semantics as the old
  /// vector<InnerVm> release loop: the last row moves into `row`).
  void remove_vm(std::size_t row) noexcept {
    const std::size_t last = vm_id.size() - 1;
    vm_id[row] = vm_id[last];
    vm_lease[row] = vm_lease[last];
    vm_avail[row] = vm_avail[last];
    vm_fresh[row] = vm_fresh[last];
    vm_busy[row] = vm_busy[last];
    vm_family[row] = vm_family[last];
    vm_tier[row] = vm_tier[last];
    vm_row[static_cast<std::size_t>(vm_id[row])] = static_cast<std::uint32_t>(row);
    vm_id.pop_back();
    vm_lease.pop_back();
    vm_avail.pop_back();
    vm_fresh.pop_back();
    vm_busy.pop_back();
    vm_family.pop_back();
    vm_tier.pop_back();
  }
};

}  // namespace psched::core
