#pragma once
// Scheduler front-ends for the experiment engine. The engine calls
// policy_for_tick() on every scheduling period; a SinglePolicyScheduler
// always answers the same policy (the paper's constituent-policy baselines),
// while the PortfolioScheduler re-runs the time-constrained selection every
// `selection_period_ticks` ticks (paper default: every tick = every 20 s).

#include <memory>
#include <span>
#include <string>

#include "cloud/profile.hpp"
#include "core/reflection.hpp"
#include "core/selector.hpp"
#include "core/trigger.hpp"
#include "policy/portfolio.hpp"
#include "util/state_digest.hpp"

namespace psched::core {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// The policy governing this scheduling tick. `tick` counts scheduling
  /// periods from 0; the queue carries predicted runtimes.
  [[nodiscard]] virtual policy::PolicyTriple policy_for_tick(
      std::uint64_t tick, std::span<const policy::QueuedJob> queue,
      const cloud::CloudProfile& profile) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Attach an observability recorder (borrowed; null = unobserved). The
  /// base implementation ignores it; the portfolio scheduler forwards it to
  /// its selector for round telemetry and candidate trace spans.
  virtual void set_recorder(obs::Recorder* /*recorder*/) {}

  /// Checkpoint support (DESIGN.md §14): fold the scheduler's cross-tick
  /// mutable state into `digest`, bit-exactly. The base implementation is a
  /// no-op — a fixed policy carries no state; the portfolio scheduler folds
  /// its selection cadence, selector partition, RNG position, and memo
  /// fingerprints.
  virtual void capture_checkpoint_state(util::StateDigest& /*digest*/) const {}
};

/// Applies one fixed policy forever.
class SinglePolicyScheduler final : public Scheduler {
 public:
  explicit SinglePolicyScheduler(policy::PolicyTriple policy);

  [[nodiscard]] policy::PolicyTriple policy_for_tick(
      std::uint64_t tick, std::span<const policy::QueuedJob> queue,
      const cloud::CloudProfile& profile) override;
  [[nodiscard]] std::string name() const override;

 private:
  policy::PolicyTriple policy_;
};

/// When the selection process re-runs.
enum class SelectionTrigger {
  /// Every `selection_period_ticks` scheduling ticks (the paper's mode;
  /// Figure 9 sweeps the period).
  kPeriodic,
  /// Only when the workload signature changes (the paper's future-work
  /// item #2), with `max_stale_ticks` as a staleness safety net.
  kOnChange,
};

struct PortfolioSchedulerConfig {
  SelectorConfig selector;
  OnlineSimConfig online_sim;
  /// Selection runs every this many scheduling ticks (paper Figure 9 sweeps
  /// 1..16). Selection is skipped while the queue is empty and retried at
  /// the next non-empty tick.
  std::uint64_t selection_period_ticks = 1;
  SelectionTrigger trigger = SelectionTrigger::kPeriodic;
  /// kOnChange: re-select at the latest after this many ticks even if the
  /// workload signature has not changed.
  std::uint64_t max_stale_ticks = 32;
  /// The paper's reflection step (future-work item #1): feed the policies
  /// that historically won under the current workload signature to the
  /// selector as front-of-Smart hints. Matters under tight time budgets.
  bool use_reflection_hints = false;
  std::size_t reflection_hint_count = 6;
};

class PortfolioScheduler final : public Scheduler {
 public:
  /// Borrows `portfolio` (must outlive the scheduler). `eval_pool`
  /// (optional, borrowed) is forwarded to the selector for wave-parallel
  /// candidate evaluation when `config.selector.eval_threads > 1`; sharing
  /// one pool between an outer scenario sweep and the inner selector waves
  /// keeps the machine from being oversubscribed (see DESIGN.md, threading
  /// model).
  PortfolioScheduler(const policy::Portfolio& portfolio, PortfolioSchedulerConfig config,
                     util::ThreadPool* eval_pool = nullptr);

  [[nodiscard]] policy::PolicyTriple policy_for_tick(
      std::uint64_t tick, std::span<const policy::QueuedJob> queue,
      const cloud::CloudProfile& profile) override;
  [[nodiscard]] std::string name() const override { return "portfolio"; }

  [[nodiscard]] const ReflectionStore& reflection() const noexcept { return reflection_; }
  [[nodiscard]] const TimeConstrainedSelector& selector() const noexcept {
    return selector_;
  }
  [[nodiscard]] const policy::Portfolio& portfolio() const noexcept { return portfolio_; }

  void set_recorder(obs::Recorder* recorder) override {
    selector_.set_recorder(recorder);
  }

  void capture_checkpoint_state(util::StateDigest& digest) const override;

 private:
  const policy::Portfolio& portfolio_;
  PortfolioSchedulerConfig config_;
  TimeConstrainedSelector selector_;
  ReflectionStore reflection_;
  policy::PolicyTriple current_;
  std::size_t current_index_ = 0;
  std::uint64_t next_selection_tick_ = 0;
  bool selected_once_ = false;
  std::uint64_t last_selection_tick_ = 0;
  WorkloadSignature last_signature_;
};

}  // namespace psched::core
