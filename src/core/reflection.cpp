#include "core/reflection.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace psched::core {

ReflectionStore::ReflectionStore(std::size_t portfolio_size, std::size_t max_history)
    : max_history_(max_history), chosen_counts_(portfolio_size, 0) {
  PSCHED_ASSERT(portfolio_size > 0);
}

void ReflectionStore::record(SimTime when, const SelectionResult& result,
                             std::uint64_t context) {
  PSCHED_ASSERT(result.best_index < chosen_counts_.size());
  ++invocations_;
  ++chosen_counts_[result.best_index];
  total_cost_ms_ += result.total_cost_ms;
  total_simulated_ += result.simulated();
  if (context != 0) ++context_wins_[context][result.best_index];
  if (max_history_ == 0 || history_.size() < max_history_) {
    history_.push_back(SelectionRecord{when, result.best_index, result.best_utility,
                                       result.simulated(), result.total_cost_ms,
                                       context});
  }
}

std::vector<std::size_t> ReflectionStore::top_for_context(std::uint64_t context,
                                                          std::size_t k) const {
  const auto it = context_wins_.find(context);
  if (it == context_wins_.end()) return {};
  std::vector<std::pair<std::size_t, std::size_t>> wins(it->second.begin(),
                                                        it->second.end());
  std::sort(wins.begin(), wins.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::size_t> top;
  for (std::size_t i = 0; i < wins.size() && i < k; ++i) top.push_back(wins[i].first);
  return top;
}

std::vector<double> ReflectionStore::invocation_ratios() const {
  std::vector<double> ratios(chosen_counts_.size(), 0.0);
  if (invocations_ == 0) return ratios;
  for (std::size_t i = 0; i < chosen_counts_.size(); ++i)
    ratios[i] = static_cast<double>(chosen_counts_[i]) /
                static_cast<double>(invocations_);
  return ratios;
}

void ReflectionStore::capture_digest(util::StateDigest& digest) const {
  digest.add_size("reflection.invocations", invocations_);
  digest.add_size("reflection.total_simulated", total_simulated_);
  std::uint64_t chosen = 0;
  for (const std::size_t c : chosen_counts_)
    chosen = util::digest_mix(chosen, static_cast<std::uint64_t>(c));
  digest.add_u64("reflection.chosen_counts", chosen);
  digest.add_size("reflection.history", history_.size());
  util::UnorderedFold contexts;
  // psched-lint: order-insensitive(UnorderedFold is commutative)
  for (const auto& [context, wins] : context_wins_) {
    util::UnorderedFold inner;
    // psched-lint: order-insensitive(UnorderedFold is commutative)
    for (const auto& [policy, count] : wins) {
      inner.absorb(util::digest_mix(util::digest_mix(0, static_cast<std::uint64_t>(policy)),
                                    static_cast<std::uint64_t>(count)));
    }
    contexts.absorb(util::digest_mix(util::digest_mix(0, context), inner.value()));
  }
  digest.add_fold("reflection.context_wins", contexts);
}

double ReflectionStore::mean_simulated_per_invocation() const noexcept {
  return invocations_ ? static_cast<double>(total_simulated_) /
                            static_cast<double>(invocations_)
                      : 0.0;
}

}  // namespace psched::core
