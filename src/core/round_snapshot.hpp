#pragma once
// The shared, rebuild-free selection-round snapshot (DESIGN.md §11).
//
// One selection round simulates up to the whole portfolio against the SAME
// problem instance (queue + cloud profile). Before this layer existed,
// every OnlineSimulator::simulate call re-derived its working state from
// the raw inputs: clamp each VmView's available_at to the snapshot instant,
// copy the queue, allocate fresh vectors. A RoundSnapshot does that
// derivation exactly once per round, stores the result in contiguous
// struct-of-arrays columns every candidate reads, and — as a byproduct of
// walking the bytes once — computes the round's 128-bit input fingerprint
// that drives cross-round memoization (see core/selector.hpp).
//
// build() reuses the column capacity from the previous round, so a
// long-running selector stops allocating here after the first few rounds.
//
// Thread-safety: a RoundSnapshot is written by the selector's coordinating
// thread before a wave is dispatched and only read afterwards; concurrent
// candidate simulations share it read-only.

#include <cstddef>
#include <span>
#include <vector>

#include "cloud/profile.hpp"
#include "policy/context.hpp"
#include "util/fingerprint.hpp"
#include "util/types.hpp"

namespace psched::core {

struct RoundSnapshot {
  // Scalars (copied from the CloudProfile).
  SimTime t0 = 0.0;
  std::size_t max_vms = 0;
  SimDuration boot_delay = 0.0;
  SimDuration billing_quantum = 0.0;

  // Queue columns (one row per queued job, queue order preserved).
  std::vector<JobId> job_id;
  std::vector<SimTime> job_submit;
  std::vector<int> job_procs;
  std::vector<double> job_predicted;

  // VM columns (one row per leased VM, profile order preserved);
  // vm_available is already clamped to t0 (an idle VM's available_at may
  // predate the snapshot instant; the inner sim only cares "usable now").
  std::vector<SimTime> vm_lease;
  std::vector<SimTime> vm_available;
  std::vector<unsigned char> vm_busy;

  // Pricing block (DESIGN.md §12), populated — and folded into the
  // fingerprint — only when the profile carries an enabled pricing view.
  // Pricing-off snapshots stay byte-identical to the pre-pricing layout,
  // which is what makes pricing-off memo behavior provably unchanged. The
  // view freezes the market at t0 (multiplier + epoch); candidate inner
  // sims price everything at that frozen multiplier, and the epoch in the
  // fingerprint guarantees a memo hit never spans a price change.
  cloud::PricingView pricing;
  std::vector<std::uint32_t> vm_family;
  std::vector<unsigned char> vm_tier;

  /// 128-bit hash of every field above, computed during build(). Two
  /// snapshots fingerprint equal iff their inputs are bit-identical.
  util::Fingerprint fingerprint;

  /// Derive the snapshot from the raw selection inputs. Reuses column
  /// capacity; safe to call once per round on a long-lived instance.
  void build(std::span<const policy::QueuedJob> queue, const cloud::CloudProfile& profile);

  [[nodiscard]] std::size_t job_count() const noexcept { return job_id.size(); }
  [[nodiscard]] std::size_t vm_count() const noexcept { return vm_lease.size(); }

  /// Materialize the queue rows as policy::QueuedJob values into `out`
  /// (cleared first, capacity reused) — the per-candidate mutable pending
  /// queue the inner sim's policy interface consumes.
  void fill_pending(std::vector<policy::QueuedJob>& out) const;
};

}  // namespace psched::core
