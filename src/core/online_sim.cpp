#include "core/online_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cloud/vm.hpp"
#include "util/assert.hpp"
#include "workload/job.hpp"

namespace psched::core {

namespace {

/// Charge for a VM released at `release` (see InnerCostModel).
/// kChargedHours: fresh VMs pay rounded-up hours from their lease;
/// pre-existing VMs pay only the hours added after the snapshot `t0`.
/// kElapsedMarginal: every VM pays exactly the time it was held within the
/// drain window [t0, release] (fresh VMs from their lease instant).
double charge_seconds(SimTime lease_time, bool fresh, SimTime release, SimTime t0,
                      InnerCostModel model, SimDuration quantum) {
  if (model == InnerCostModel::kElapsedMarginal) {
    return std::max(0.0, release - std::max(lease_time, t0));
  }
  const double total = cloud::charged_seconds_for(lease_time, release, quantum);
  if (fresh) return total;
  const double sunk = cloud::charged_seconds_for(lease_time, t0, quantum);
  return std::max(0.0, total - sunk);
}

}  // namespace

OnlineSimulator::OnlineSimulator(OnlineSimConfig config) : config_(config) {
  PSCHED_ASSERT(config_.schedule_period > 0.0);
  PSCHED_ASSERT(config_.slowdown_bound > 0.0);
}

SimOutcome OnlineSimulator::simulate(std::span<const policy::QueuedJob> queue,
                                     const cloud::CloudProfile& profile,
                                     const policy::PolicyTriple& policy) const {
  RoundSnapshot snapshot;
  snapshot.build(queue, profile);
  SimArena arena;
  return simulate(snapshot, policy, arena);
}

SimOutcome OnlineSimulator::simulate(const RoundSnapshot& snapshot,
                                     const policy::PolicyTriple& policy,
                                     SimArena& arena) const {
  // Const-thread-safe for distinct arenas (see header): all mutable state
  // lives in `arena`; config_, the snapshot, and the policies are only read.
  PSCHED_ASSERT(policy.provisioning && policy.job_selection && policy.vm_selection);
  if (config_.inject_fault == validate::FaultInjection::kCandidateThrow)
    throw std::runtime_error("injected fault: candidate simulation throw");
  const SimTime t0 = snapshot.t0;

  arena.reset();
  // Pricing (DESIGN.md §12): the arena keeps a mutable copy of the round's
  // pricing view — occupancy (family in_use, reserved_in_use) tracks the
  // inner fleet live so tier-aware policies see real headroom, while the
  // market itself stays frozen at the snapshot's multiplier. Spot
  // revocations are NOT simulated inside a candidate (like crashes: the
  // inner sim is the scheduler's optimistic plan, not the adversary).
  const bool pricing_on = snapshot.pricing.enabled;
  if (pricing_on) arena.pricing = snapshot.pricing;
  /// Price weight of one VM row: effective $/quantum at the frozen market,
  /// as a multiplier on charged seconds (1.0 everywhere with pricing off).
  const auto price_weight = [&arena](std::size_t row) -> double {
    const cloud::PricingView& pv = arena.pricing;
    double fraction = 1.0;
    const auto tier = static_cast<cloud::PurchaseTier>(arena.vm_tier[row]);
    if (tier == cloud::PurchaseTier::kSpot) fraction = pv.spot_price_fraction;
    else if (tier == cloud::PurchaseTier::kReserved) fraction = 0.0;
    return pv.families[arena.vm_family[row]].price * fraction;
  };
  VmId next_vm_id = 0;
  for (std::size_t i = 0; i < snapshot.vm_count(); ++i) {
    // Snapshot availability is already clamped to t0.
    arena.push_vm(next_vm_id++, snapshot.vm_lease[i], snapshot.vm_available[i],
                  /*fresh=*/false, snapshot.vm_busy[i] != 0,
                  pricing_on ? snapshot.vm_family[i] : 0,
                  pricing_on ? snapshot.vm_tier[i] : 0);
  }

  snapshot.fill_pending(arena.pending);
  std::vector<policy::QueuedJob>& pending = arena.pending;

  SimOutcome out;
  SimTime now = t0;
  double bsd_sum = 0.0;
  std::size_t finished = 0;
  const std::size_t total_jobs = pending.size();
  SimTime last_completion = t0;

  while (!pending.empty()) {
    if (++out.decisions > config_.max_iterations) {
      PSCHED_ASSERT_MSG(false, "online simulation exceeded the iteration cap");
    }

    // --- scheduling context -------------------------------------------------
    std::size_t idle = 0, booting = 0;
    for (std::size_t i = 0; i < arena.vm_count(); ++i) {
      if (arena.vm_avail[i] <= now) ++idle;
      else if (!arena.vm_busy[i]) ++booting;
    }
    policy::SchedContext ctx;
    ctx.now = now;
    ctx.queue = pending;
    ctx.idle_vms = idle;
    ctx.booting_vms = booting;
    ctx.total_vms = arena.vm_count();
    ctx.max_vms = snapshot.max_vms;
    if (pricing_on) ctx.pricing = &arena.pricing;

    // --- 1. provisioning -----------------------------------------------------
    std::size_t headroom =
        arena.vm_count() >= snapshot.max_vms ? 0 : snapshot.max_vms - arena.vm_count();
    std::size_t to_lease = 0;
    if (!pricing_on) {
      to_lease = std::min(policy.provisioning->vms_to_lease(ctx), headroom);
      for (std::size_t i = 0; i < to_lease; ++i) {
        arena.push_vm(next_vm_id++, now, now + snapshot.boot_delay,
                      /*fresh=*/true, /*busy=*/false);
      }
    } else {
      // Tier-aware path: the policy's lease plan, granted request by
      // request under the same caps the provider enforces — global
      // headroom, per-family caps, and the reserved commitment.
      policy.provisioning->lease_plan(ctx, arena.lease_requests);
      for (const cloud::LeaseRequest& req : arena.lease_requests) {
        PSCHED_ASSERT_MSG(req.family < arena.pricing.families.size(),
                          "lease plan names an unknown VM family");
        std::size_t grant = std::min(req.count, headroom);
        grant = std::min(grant, arena.pricing.family_free(req.family));
        if (req.tier == cloud::PurchaseTier::kReserved)
          grant = std::min(grant, arena.pricing.reserved_free());
        const SimDuration boot =
            arena.pricing.families[req.family].boot_delay;
        for (std::size_t i = 0; i < grant; ++i) {
          arena.push_vm(next_vm_id++, now, now + boot, /*fresh=*/true,
                        /*busy=*/false, req.family,
                        static_cast<unsigned char>(req.tier));
        }
        arena.pricing.families[req.family].in_use += grant;
        if (req.tier == cloud::PurchaseTier::kReserved)
          arena.pricing.reserved_in_use += grant;
        headroom -= grant;
        to_lease += grant;
      }
    }

    // --- 2. allocation (shared planner; head-of-line or EASY backfill) -------
    policy::order_queue(pending, *policy.job_selection, now, arena.order);
    arena.avail.clear();
    for (std::size_t i = 0; i < arena.vm_count(); ++i)
      arena.avail.push_back(
          policy::VmAvail{arena.vm_id[i], arena.vm_lease[i], arena.vm_avail[i]});
    policy::plan_allocation_into(now, pending, arena.avail, *policy.vm_selection,
                                 config_.allocation, snapshot.billing_quantum,
                                 arena.plan, arena.alloc);
    if (!arena.plan.empty()) {
      arena.served.assign(pending.size(), 0);
      for (const policy::AllocationPlan::Start& start : arena.plan.starts) {
        arena.served[start.queue_index] = 1;
        const policy::QueuedJob& job = pending[start.queue_index];
        const SimTime completion = now + job.predicted_runtime;
        for (const VmId chosen : arena.plan.vms_of(start)) {
          const std::size_t row = arena.vm_row[static_cast<std::size_t>(chosen)];
          arena.vm_avail[row] = completion;
          arena.vm_busy[row] = 1;
        }
        bsd_sum += workload::bounded_slowdown(job.wait(now), job.predicted_runtime,
                                              config_.slowdown_bound);
        out.rj_proc_seconds += job.procs * job.predicted_runtime;
        last_completion = std::max(last_completion, completion);
        ++finished;
      }
      std::size_t kept = 0;
      for (std::size_t i = 0; i < pending.size(); ++i)
        if (!arena.served[i]) pending[kept++] = pending[i];
      pending.resize(kept);
    }

    // --- 3. idle-VM release ----------------------------------------------------
    // kEagerSurplus: while jobs wait, every idle VM is the waiting head's
    // reserve, and once the queue drains the loop exits — the end-of-run
    // release below settles all remaining charges. Only the boundary rule
    // needs mid-run releases.
    if (config_.release_rule == ReleaseRule::kBoundary) {
      // Idle VMs reserved for the still-waiting head job are exempt (same
      // thrash-avoidance as the engine's release rule).
      std::size_t reserve =
          pending.empty() ? 0 : static_cast<std::size_t>(pending.front().procs);
      for (std::size_t i = 0; i < arena.vm_count();) {
        if (arena.vm_avail[i] <= now && reserve > 0) {
          --reserve;
          ++i;
          continue;
        }
        if (arena.vm_avail[i] <= now &&
            cloud::remaining_paid_at(arena.vm_lease[i], now,
                                     snapshot.billing_quantum) <=
                config_.release_window) {
          double seconds =
              charge_seconds(arena.vm_lease[i], arena.vm_fresh[i] != 0, now, t0,
                             config_.cost_model, snapshot.billing_quantum);
          if (pricing_on) {
            seconds *= price_weight(i);
            cloud::PricingView::Family& fam =
                arena.pricing.families[arena.vm_family[i]];
            if (fam.in_use > 0) --fam.in_use;
            if (arena.vm_tier[i] ==
                    static_cast<unsigned char>(cloud::PurchaseTier::kReserved) &&
                arena.pricing.reserved_in_use > 0)
              --arena.pricing.reserved_in_use;
          }
          out.rv_charged_seconds += seconds;
          arena.remove_vm(i);
        } else {
          ++i;
        }
      }
    }

    if (pending.empty()) break;

    // --- 4. advance time ------------------------------------------------------
    // Next interesting instant: a VM becomes available, or the provisioning
    // answer changes purely due to waiting (ODX/ODE crossings). If this
    // iteration changed any state (leases or starts), the policy may act
    // again at the very next scheduling tick — engine fidelity requires
    // considering it. Quiet stretches still fast-forward directly to the
    // next event. Guaranteed to move forward (see DESIGN.md).
    const bool changed = to_lease > 0 || !arena.plan.empty();
    SimTime next_avail = kTimeNever;
    for (std::size_t i = 0; i < arena.vm_count(); ++i)
      if (arena.vm_avail[i] > now) next_avail = std::min(next_avail, arena.vm_avail[i]);
    // Rebuild the context: provisioning/allocation above changed the state.
    std::size_t idle2 = 0, booting2 = 0;
    for (std::size_t i = 0; i < arena.vm_count(); ++i) {
      if (arena.vm_avail[i] <= now) ++idle2;
      else if (!arena.vm_busy[i]) ++booting2;
    }
    ctx.queue = pending;
    ctx.idle_vms = idle2;
    ctx.booting_vms = booting2;
    ctx.total_vms = arena.vm_count();
    if (pricing_on) ctx.pricing = &arena.pricing;
    const SimTime next_policy = policy.provisioning->next_change(ctx);
    SimTime next = std::min(next_avail, next_policy);
    if (changed) next = std::min(next, now + config_.schedule_period);
    if (next == kTimeNever || next <= now) next = now + config_.schedule_period;
    PSCHED_ASSERT_MSG(next > now, "online simulation failed to advance");
    now = next;
  }

  // Release everything still leased. A VM that is still booting and was
  // never used settles at the engine's release instant: the outer loop can
  // only release it at the first scheduling tick at or after boot
  // completion, so the charge runs through `available_at` rounded up to the
  // tick grid — not bare `available_at`, which under-bills whenever the
  // boot delay is not a multiple of the schedule period. (On the
  // differential oracle's ground rules the two coincide; see DESIGN.md §7.)
  for (std::size_t i = 0; i < arena.vm_count(); ++i) {
    SimTime release = std::max(arena.vm_avail[i], now);
    if (!arena.vm_busy[i] && arena.vm_avail[i] > now) {
      release = std::ceil(arena.vm_avail[i] / config_.schedule_period) *
                config_.schedule_period;
    }
    double seconds =
        charge_seconds(arena.vm_lease[i], arena.vm_fresh[i] != 0, release, t0,
                       config_.cost_model, snapshot.billing_quantum);
    if (pricing_on) seconds *= price_weight(i);
    out.rv_charged_seconds += seconds;
  }

  out.avg_bounded_slowdown = finished ? bsd_sum / static_cast<double>(finished) : 1.0;
  out.sim_makespan = last_completion - t0;
  out.utility = metrics::utility(config_.utility, out.rj_proc_seconds,
                                 out.rv_charged_seconds, out.avg_bounded_slowdown);
  PSCHED_ASSERT(finished == total_jobs);
  return out;
}

}  // namespace psched::core
