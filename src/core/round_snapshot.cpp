#include "core/round_snapshot.hpp"

#include <algorithm>

namespace psched::core {

void RoundSnapshot::build(std::span<const policy::QueuedJob> queue,
                          const cloud::CloudProfile& profile) {
  t0 = profile.now;
  max_vms = profile.max_vms;
  boot_delay = profile.boot_delay;
  billing_quantum = profile.billing_quantum;

  job_id.clear();
  job_submit.clear();
  job_procs.clear();
  job_predicted.clear();
  job_id.reserve(queue.size());
  job_submit.reserve(queue.size());
  job_procs.reserve(queue.size());
  job_predicted.reserve(queue.size());
  for (const policy::QueuedJob& job : queue) {
    job_id.push_back(job.id);
    job_submit.push_back(job.submit);
    job_procs.push_back(job.procs);
    job_predicted.push_back(job.predicted_runtime);
  }

  vm_lease.clear();
  vm_available.clear();
  vm_busy.clear();
  vm_lease.reserve(profile.vms.size());
  vm_available.reserve(profile.vms.size());
  vm_busy.reserve(profile.vms.size());
  for (const cloud::VmView& view : profile.vms) {
    vm_lease.push_back(view.lease_time);
    vm_available.push_back(std::max(view.available_at, t0));
    vm_busy.push_back(view.busy ? 1 : 0);
  }

  // Pricing columns exist only when pricing is on, so pricing-off
  // snapshots (and their fingerprints, below) stay byte-identical to the
  // pre-pricing layout.
  pricing = profile.pricing;
  vm_family.clear();
  vm_tier.clear();
  if (pricing.enabled) {
    vm_family.reserve(profile.vms.size());
    vm_tier.reserve(profile.vms.size());
    for (const cloud::VmView& view : profile.vms) {
      vm_family.push_back(view.family);
      vm_tier.push_back(static_cast<unsigned char>(view.tier));
    }
  }

  // The fingerprint covers every input the inner simulation reads, in a
  // fixed canonical order, with length prefixes so (say) moving a value
  // from the queue to the VM table cannot alias. The simulator config is
  // NOT part of the hash: a memo cache lives inside one selector, whose
  // OnlineSimConfig is immutable, so config identity is structural.
  util::Fingerprint fp;
  fp.mix(t0);
  fp.mix(max_vms);
  fp.mix(boot_delay);
  fp.mix(billing_quantum);
  fp.mix(job_id.size());
  for (std::size_t i = 0; i < job_id.size(); ++i) {
    fp.mix(static_cast<std::size_t>(job_id[i]));
    fp.mix(job_submit[i]);
    fp.mix(job_procs[i]);
    fp.mix(job_predicted[i]);
  }
  fp.mix(vm_lease.size());
  for (std::size_t i = 0; i < vm_lease.size(); ++i) {
    fp.mix(vm_lease[i]);
    fp.mix(vm_available[i]);
    fp.mix(vm_busy[i] != 0);
  }
  if (pricing.enabled) {
    // The whole pricing view in canonical order: market state (epoch +
    // multiplier — a schedule step or walk step lands in a new epoch and
    // invalidates memo hits), tier economics, commitment occupancy, the
    // family table, and the per-VM family/tier columns.
    fp.mix(pricing.enabled);
    fp.mix(pricing.epoch);
    fp.mix(pricing.multiplier);
    fp.mix(pricing.spot_price_fraction);
    fp.mix(pricing.reserved_total);
    fp.mix(pricing.reserved_in_use);
    fp.mix(pricing.families.size());
    for (const cloud::PricingView::Family& f : pricing.families) {
      fp.mix(f.price);
      fp.mix(f.boot_delay);
      fp.mix(f.cap);
      fp.mix(f.in_use);
    }
    for (std::size_t i = 0; i < vm_family.size(); ++i) {
      fp.mix(static_cast<std::size_t>(vm_family[i]));
      fp.mix(static_cast<std::size_t>(vm_tier[i]));
    }
  }
  fingerprint = fp;
}

void RoundSnapshot::fill_pending(std::vector<policy::QueuedJob>& out) const {
  out.clear();
  out.reserve(job_id.size());
  for (std::size_t i = 0; i < job_id.size(); ++i) {
    policy::QueuedJob job;
    job.id = job_id[i];
    job.submit = job_submit[i];
    job.procs = job_procs[i];
    job.predicted_runtime = job_predicted[i];
    out.push_back(job);
  }
}

}  // namespace psched::core
