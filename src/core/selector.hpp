#pragma once
// Time-constrained portfolio simulation — the paper's Algorithm 1.
//
// The portfolio is partitioned into three sets:
//   Smart — top performers of the previous invocation,
//   Stale — policies (from Smart and Poor) not simulated last time,
//   Poor  — bottom performers of the previous invocation.
// A time budget Delta is split across the sets proportionally to their
// sizes; Smart and Stale are simulated in order, then the remaining budget
// samples Poor uniformly at random. The simulated policies are re-ranked by
// utility: the top lambda fraction becomes the new Smart set, the rest join
// Poor; un-simulated Smart leftovers append to Stale (ordered by
// staleness). The best simulated policy is returned for real scheduling.
//
// The budget can count measured wall time, a fixed synthetic per-policy
// cost (for the deterministic Figure-10 experiment), or both — or, with
// BudgetMode::kFixedCount, a plain simulation count, which removes every
// clock read from the selection path and makes a round reproducible
// bit-for-bit across machines and eval_threads widths.
//
// Candidate evaluation can run in parallel waves (SelectorConfig::
// eval_threads): each set is drained in deterministic groups of up to
// eval_threads candidates simulated concurrently on a util::ThreadPool,
// and a wave is charged against the budget as the maximum of its members'
// measured costs plus one synthetic overhead — concurrent simulations
// overlap in wall time, so Delta buys up to eval_threads× more candidates.
// All sequencing decisions (which candidates form a wave, Poor-set RNG
// draws, score order) happen on the coordinating thread, so results are
// deterministic for a fixed eval_threads, and eval_threads = 1 is
// bit-identical to the original sequential algorithm.
//
// Graceful degradation (DESIGN.md §10): a candidate whose online simulation
// throws — or, under a candidate_timeout_ms bound, blows its per-candidate
// budget — is quarantined to the Poor set instead of aborting the run. If a
// whole round yields no usable score, select() returns a degraded result
// that carries the last-known-good (preferred) policy forward.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "core/online_sim.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/state_digest.hpp"
#include "util/thread_annotations.hpp"

namespace psched::util {
class ThreadPool;
}  // namespace psched::util

namespace psched::core {

/// How to resolve exact utility ties at the top of the ranking. Ties are
/// the common case, not a corner: on a one-job queue with ample capacity,
/// every provisioning/allocation combination that starts the job at the
/// same instant scores identically (often 48 of the 60 policies).
enum class TieBreak {
  kRandom,      ///< uniform among the tied-best (default; reproduces the
                ///< paper's near-even invocation ratios, Figure 5a)
  kSticky,      ///< keep the currently applied policy if it is tied-best
  kFirstIndex,  ///< lowest portfolio index (fully deterministic ranking)
};

/// How the selection budget Delta is accounted.
enum class BudgetMode {
  /// Delta is wall time: each simulation charges measured steady_clock
  /// milliseconds (use_measured_cost) plus synthetic_overhead_ms. Matches
  /// the paper's deployment model; machine-dependent by design.
  kWallclock,
  /// Delta is a simulation count: every candidate charges exactly one unit
  /// and the selector reads no clock at all, so a round's outcome is a pure
  /// function of (portfolio, queue, profile, seed) — bit-identical across
  /// machines, load conditions, and eval_threads widths. use_measured_cost
  /// and synthetic_overhead_ms are ignored.
  kFixedCount,
};

struct SelectorConfig {
  /// Budget accounting mode; kFixedCount removes every wall-clock read from
  /// the selection path (psched-lint rule D1's allowlist covers only the
  /// kWallclock branch).
  BudgetMode budget_mode = BudgetMode::kWallclock;
  /// Per-round simulation budget when budget_mode = kFixedCount: the number
  /// of candidate simulations Delta buys (split across Smart/Stale/Poor
  /// proportionally, exactly like the millisecond budget). 0 means
  /// unbounded. Ignored in kWallclock mode.
  std::size_t fixed_count = 0;
  /// Delta in milliseconds; <= 0 means unbounded (simulate the whole
  /// portfolio — the paper's Sections 6.1-6.4 operating point).
  /// Ignored in kFixedCount mode.
  double time_constraint_ms = 0.0;
  /// Tie resolution among equal-best policies.
  TieBreak tie_break = TieBreak::kRandom;
  /// Fraction of simulated policies promoted to Smart (paper: 0.6).
  double lambda = 0.6;
  /// Deterministic extra cost charged per policy simulation (paper §6.5
  /// adds 10 ms per policy to make the budget bind).
  double synthetic_overhead_ms = 0.0;
  /// Whether measured wall time also counts against the budget. Disable
  /// together with a positive synthetic overhead for machine-independent
  /// experiments.
  bool use_measured_cost = true;
  /// Seed for the random sampling of the Poor set.
  std::uint64_t rng_seed = 0x5eed;
  /// Candidates simulated concurrently per evaluation wave. 1 (default)
  /// preserves the sequential Algorithm 1 bit-for-bit; k > 1 drains
  /// Smart/Stale/Poor in deterministic waves of up to k candidates, each
  /// wave charged max(member measured cost) + synthetic_overhead_ms, so a
  /// budget Delta simulates up to k× more policies. 0 means hardware
  /// concurrency.
  std::size_t eval_threads = 1;
  /// Per-candidate budget blow-out bound (kWallclock mode only): a
  /// candidate whose charged cost exceeds this many milliseconds is
  /// quarantined to Poor instead of entering the ranking. <= 0 (default)
  /// disables the bound. With use_measured_cost the comparison involves
  /// measured wall time and is machine-dependent, like the mode itself;
  /// with synthetic-only accounting it is deterministic. Ignored in
  /// kFixedCount mode (every candidate charges exactly one unit there).
  double candidate_timeout_ms = 0.0;
  /// Cross-round memoization (DESIGN.md §11): cache each candidate's
  /// SimOutcome keyed by the round's 128-bit input fingerprint; a later
  /// round with a bit-identical (queue, cloud profile) reuses the stored
  /// outcome instead of re-simulating. Deterministic by construction: a hit
  /// returns the exact outcome a fresh simulation would produce, and in the
  /// deterministic budget modes (kFixedCount; kWallclock with
  /// use_measured_cost = false) a hit charges exactly what a miss would, so
  /// selection output is bit-identical with the memo on or off. In measured
  /// kWallclock mode hits charge (near) zero measured time — the speedup —
  /// which is budget-visible, like every other wall-clock effect in that
  /// mode. Automatically disabled while fault injection is active (the
  /// injected-throw path must stay exercised).
  bool memoize = true;
  /// Paranoia switch: on every memo hit, re-simulate fresh and assert the
  /// stored outcome is bit-identical (fingerprint-collision tripwire).
  /// Costs a full simulation per hit; enabled by the engine whenever
  /// invariant checking is on, off in performance runs.
  bool verify_memo = false;
};

/// Utility score of one simulated policy.
struct PolicyScore {
  std::size_t index = 0;    ///< into Portfolio::policies()
  double utility = 0.0;
  double cost_ms = 0.0;     ///< budget charged for this simulation
};

struct SelectionResult {
  std::size_t best_index = 0;
  double best_utility = 0.0;
  std::vector<PolicyScore> scores;  ///< all policies simulated this round
  /// Budget actually charged: the sum of per-wave costs. Equal to the sum
  /// of the scores' cost_ms when eval_threads = 1; smaller with parallel
  /// waves (concurrent members overlap in wall time).
  double total_cost_ms = 0.0;
  /// Candidates quarantined this round: their online simulation threw, or
  /// (kWallclock + candidate_timeout_ms) blew the per-candidate budget.
  /// Quarantined candidates charge the budget they consumed, contribute no
  /// score, and are demoted to the Poor set.
  std::size_t quarantined = 0;
  /// Candidates answered from the cross-round memo cache this round (always
  /// 0 with SelectorConfig::memoize off or fault injection active).
  std::size_t memo_hits = 0;
  /// True when every attempted candidate was quarantined: no ranking was
  /// possible and best_index is the last-known-good (preferred) policy
  /// carried over with best_utility = 0 — graceful degradation instead of
  /// aborting the run.
  bool degraded = false;

  [[nodiscard]] std::size_t simulated() const noexcept { return scores.size(); }
};

class TimeConstrainedSelector {
 public:
  /// The selector borrows `portfolio` (must outlive the selector). When
  /// `config.eval_threads` exceeds 1, candidate waves run on `shared_pool`
  /// if given (it must outlive the selector; the coordinating thread helps
  /// drain each wave, so a pool already busy with outer scenario sweeps is
  /// safe to share) or on an internally owned pool of eval_threads - 1
  /// workers otherwise.
  TimeConstrainedSelector(const policy::Portfolio& portfolio, OnlineSimulator simulator,
                          SelectorConfig config,
                          util::ThreadPool* shared_pool = nullptr);
  // Out of line: the owned pool's deleter needs the complete ThreadPool.
  ~TimeConstrainedSelector();

  /// Run Algorithm 1 on the given problem instance. Requires a non-empty
  /// queue (an empty instance cannot rank policies). `preferred_index` is
  /// the currently applied policy (used by TieBreak::kSticky); pass the
  /// portfolio size (or omit) when there is none. `hints` (the reflection
  /// step's suggestions) are promoted to the front of the Smart set before
  /// the budgeted phases, so historically good policies are simulated first
  /// even under tight budgets.
  [[nodiscard]] SelectionResult select(std::span<const policy::QueuedJob> queue,
                                       const cloud::CloudProfile& profile,
                                       std::size_t preferred_index = SIZE_MAX,
                                       std::span<const std::size_t> hints = {});

  /// Reset Smart/Stale/Poor to the initial state (everything Smart).
  void reset();

  // Set introspection (tests + the stabilization property).
  [[nodiscard]] const std::deque<std::size_t>& smart() const noexcept { return smart_; }
  [[nodiscard]] const std::deque<std::size_t>& stale() const noexcept { return stale_; }
  [[nodiscard]] const std::vector<std::size_t>& poor() const noexcept { return poor_; }

  [[nodiscard]] const SelectorConfig& config() const noexcept { return config_; }
  [[nodiscard]] const OnlineSimulator& simulator() const noexcept { return simulator_; }

  /// Effective candidates per wave (eval_threads with 0 resolved to the
  /// hardware concurrency).
  [[nodiscard]] std::size_t wave_width() const noexcept { return wave_width_; }

  /// Attach (or detach, with nullptr) an observability recorder (borrowed;
  /// must outlive the selector or be detached first). Recording is strictly
  /// passive: no RNG draw, wave composition, score order, or budget charge
  /// depends on the recorder, so selection output is bit-identical with it
  /// attached, detached, or at any ObsLevel.
  void set_recorder(obs::Recorder* recorder) noexcept { recorder_ = recorder; }

  /// Checkpoint support (DESIGN.md §14): fold the selector's cross-round
  /// mutable state — the Poor-sampling RNG position, the Smart/Stale/Poor
  /// partition, and every memo slot's fingerprint — into `digest`,
  /// bit-exactly. Wall-clock costs never enter the digest (psched-lint D1):
  /// in measured kWallclock mode they vary run to run by design, and in the
  /// deterministic budget modes they are derived state. Must be called from
  /// the coordinating thread, like select().
  void capture_checkpoint_state(util::StateDigest& digest) const;

 private:
  /// One cached candidate outcome (per portfolio index): valid iff `fp`
  /// equals the current round fingerprint.
  struct MemoSlot {
    util::Fingerprint fp;
    SimOutcome outcome;
    bool valid = false;
  };

  /// Whether memo lookups/stores are live for the current configuration.
  [[nodiscard]] bool memo_enabled() const noexcept;

  /// Simulate policy `index` against the current round snapshot (arena slot
  /// 0) and append its score to `scores`; returns the budget cost charged.
  /// A candidate that throws or blows the per-candidate budget lands in
  /// `quarantined` instead of `scores`. Memo hits skip the simulation and
  /// bump `memo_hits`.
  double simulate_one(std::size_t index, std::vector<PolicyScore>& scores,
                      std::vector<std::size_t>& quarantined, std::size_t& memo_hits);

  /// Simulate one wave of candidates against the current round snapshot
  /// (concurrently when the wave has more than one member; wave slot k uses
  /// arenas_[k]), append their scores in wave order, and return the budget
  /// cost charged for the whole wave. Failed members land in `quarantined`
  /// (wave order); memo hits bump `memo_hits`.
  double run_wave(std::span<const std::size_t> wave, std::vector<PolicyScore>& scores,
                  std::vector<std::size_t>& quarantined, std::size_t& memo_hits);

  const policy::Portfolio& portfolio_;
  OnlineSimulator simulator_;
  SelectorConfig config_;
  obs::Recorder* recorder_ = nullptr;  ///< null = unobserved (default)
  // All sequencing state below is touched only by the coordinating thread
  // that called select(): wave workers receive disjoint score slots and
  // never see the RNG or the sets. PSCHED_CONFINED_TO documents (but cannot
  // verify) this; the determinism matrix tests enforce it by requiring
  // bit-identical results across eval_threads widths.
  util::Rng rng_ PSCHED_CONFINED_TO("selector coordinating thread");
  std::size_t wave_width_ = 1;
  std::unique_ptr<util::ThreadPool> owned_pool_;  ///< only if no shared pool
  util::ThreadPool* pool_ = nullptr;              ///< non-null iff wave_width_ > 1

  std::deque<std::size_t> smart_ PSCHED_CONFINED_TO("selector coordinating thread");
  std::deque<std::size_t> stale_ PSCHED_CONFINED_TO("selector coordinating thread");
  std::vector<std::size_t> poor_ PSCHED_CONFINED_TO("selector coordinating thread");

  // Hot-path state (DESIGN.md §11). The snapshot is (re)built once per
  // select() on the coordinating thread before any wave is dispatched and
  // is strictly read-only while workers run. Arena k is owned by wave slot
  // k for the duration of one wave (disjoint slots; no sharing); between
  // waves all arenas belong to the coordinating thread. The memo cache is
  // read and written by the coordinating thread only — workers receive
  // copies of any hit outcome they need (verify_memo).
  RoundSnapshot snapshot_;
  std::vector<SimArena> arenas_;
  std::vector<MemoSlot> memo_ PSCHED_CONFINED_TO("selector coordinating thread");
};

}  // namespace psched::core
