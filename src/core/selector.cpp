#include "core/selector.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace psched::core {

namespace {

/// Trace-args payload for one candidate simulation.
std::string candidate_args(std::size_t index) {
  return "{\"policy\":" + std::to_string(index) + '}';
}

/// Bit-exact outcome comparison for the verify_memo tripwire: IEEE-754 bit
/// patterns, not float equality — the memo contract is "the stored outcome
/// IS what a fresh simulation produces", down to the sign of zero.
bool bit_identical(const SimOutcome& a, const SimOutcome& b) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  return bits(a.utility) == bits(b.utility) &&
         bits(a.avg_bounded_slowdown) == bits(b.avg_bounded_slowdown) &&
         bits(a.rj_proc_seconds) == bits(b.rj_proc_seconds) &&
         bits(a.rv_charged_seconds) == bits(b.rv_charged_seconds) &&
         bits(a.sim_makespan) == bits(b.sim_makespan) && a.decisions == b.decisions;
}

}  // namespace

TimeConstrainedSelector::TimeConstrainedSelector(const policy::Portfolio& portfolio,
                                                 OnlineSimulator simulator,
                                                 SelectorConfig config,
                                                 util::ThreadPool* shared_pool)
    : portfolio_(portfolio),
      simulator_(std::move(simulator)),
      config_(config),
      rng_(config.rng_seed) {
  PSCHED_ASSERT_MSG(portfolio_.size() > 0, "selector needs a non-empty portfolio");
  PSCHED_ASSERT(config_.lambda > 0.0 && config_.lambda <= 1.0);
  wave_width_ = config_.eval_threads != 0
                    ? config_.eval_threads
                    : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (wave_width_ > 1) {
    if (shared_pool != nullptr) {
      pool_ = shared_pool;
    } else {
      // The coordinating thread drains waves too (ThreadPool::run_batch), so
      // wave_width_ - 1 workers give wave_width_ concurrent simulations.
      owned_pool_ = std::make_unique<util::ThreadPool>(wave_width_ - 1);
      pool_ = owned_pool_.get();
    }
  }
  // One arena per wave slot (slot k of every wave simulates in arenas_[k]),
  // one memo slot per portfolio policy.
  arenas_.resize(wave_width_);
  memo_.resize(portfolio_.size());
  reset();
}

TimeConstrainedSelector::~TimeConstrainedSelector() = default;

void TimeConstrainedSelector::reset() {
  smart_.clear();
  stale_.clear();
  poor_.clear();
  // First invocation: every policy is in Smart (paper, Section 4).
  for (std::size_t i = 0; i < portfolio_.size(); ++i) smart_.push_back(i);
  // Drop cached outcomes too: reset() means "forget everything learned".
  for (MemoSlot& slot : memo_) slot.valid = false;
}

void TimeConstrainedSelector::capture_checkpoint_state(util::StateDigest& digest) const {
  digest.add_u64("selector.rng", rng_.state());
  // The partition sequences are order-sensitive state: Smart/Stale are
  // drained front to back and Poor is indexed by the RNG.
  std::uint64_t partition = 0;
  for (const std::size_t i : smart_) partition = util::digest_mix(partition, static_cast<std::uint64_t>(i));
  digest.add_u64("selector.smart", partition);
  partition = 0;
  for (const std::size_t i : stale_) partition = util::digest_mix(partition, static_cast<std::uint64_t>(i));
  digest.add_u64("selector.stale", partition);
  partition = 0;
  for (const std::size_t i : poor_) partition = util::digest_mix(partition, static_cast<std::uint64_t>(i));
  digest.add_u64("selector.poor", partition);
  digest.add_size("selector.smart_len", smart_.size());
  digest.add_size("selector.stale_len", stale_.size());
  digest.add_size("selector.poor_len", poor_.size());
  // Memo slots are indexed by portfolio position, so folding them in index
  // order is deterministic. Only identity-bearing fields enter the digest:
  // the fingerprint proves which problem instance each cached outcome
  // answers for.
  std::uint64_t memo = 0;
  std::size_t valid_slots = 0;
  for (std::size_t i = 0; i < memo_.size(); ++i) {
    const MemoSlot& slot = memo_[i];
    if (!slot.valid) continue;
    ++valid_slots;
    memo = util::digest_mix(memo, static_cast<std::uint64_t>(i));
    memo = util::digest_mix(memo, slot.fp.lo());
    memo = util::digest_mix(memo, slot.fp.hi());
  }
  digest.add_u64("selector.memo", memo);
  digest.add_size("selector.memo_valid", valid_slots);
}

bool TimeConstrainedSelector::memo_enabled() const noexcept {
  // Fault injection makes simulate() throw; serving such a candidate from
  // the cache would silently skip the failure path under test.
  return config_.memoize &&
         simulator_.config().inject_fault == validate::FaultInjection::kNone;
}

double TimeConstrainedSelector::simulate_one(std::size_t index,
                                             std::vector<PolicyScore>& scores,
                                             std::vector<std::size_t>& quarantined,
                                             std::size_t& memo_hits) {
  // Candidate trace spans use the recorder's clock (obs.cpp), independent of
  // the budget clock below, so tracing can never perturb budget accounting.
  const bool tracing = recorder_ != nullptr && recorder_->tracing_on();
  if (tracing)
    recorder_->append_event(obs::TraceEvent{"selector.candidate", 'B',
                                            recorder_->now_us(), 0,
                                            candidate_args(index)});
  const bool memo_on = memo_enabled();
  MemoSlot& slot = memo_[index];
  const bool hit = memo_on && slot.valid && slot.fp == snapshot_.fingerprint;
  if (config_.budget_mode == BudgetMode::kFixedCount) {
    // Deterministic accounting: one unit per candidate, no clock read. A
    // throwing candidate still consumed its budget slot, so the unit is
    // charged either way. A memo hit charges the same unit a fresh
    // simulation would — the candidate set and every budget decision stay
    // bit-identical with the memo on or off.
    SimOutcome outcome;
    bool failed = false;
    if (hit) {
      outcome = slot.outcome;
      ++memo_hits;
      if (config_.verify_memo) {
        const SimOutcome fresh =
            simulator_.simulate(snapshot_, portfolio_.policies()[index], arenas_[0]);
        PSCHED_ASSERT_MSG(bit_identical(fresh, outcome),
                          "memo hit diverged from a fresh simulation");
      }
    } else {
      try {
        outcome = simulator_.simulate(snapshot_, portfolio_.policies()[index], arenas_[0]);
      } catch (const std::exception&) {
        failed = true;
      }
    }
    if (failed) {
      quarantined.push_back(index);
    } else {
      scores.push_back(PolicyScore{index, outcome.utility, 1.0});
      if (memo_on && !hit) slot = MemoSlot{snapshot_.fingerprint, outcome, true};
    }
    if (tracing)
      recorder_->append_event(
          obs::TraceEvent{"selector.candidate", 'E', recorder_->now_us(), 0, {}});
    return 1.0;
  }
  // A hit charges zero measured time by definition (the lookup is what the
  // round actually pays; timing it would read a clock for nanoseconds of
  // work and make synthetic-only accounting machine-dependent).
  double measured_ms = 0.0;
  SimOutcome outcome;
  bool failed = false;
  if (hit) {
    outcome = slot.outcome;
    ++memo_hits;
    if (config_.verify_memo) {
      const SimOutcome fresh =
          simulator_.simulate(snapshot_, portfolio_.policies()[index], arenas_[0]);
      PSCHED_ASSERT_MSG(bit_identical(fresh, outcome),
                        "memo hit diverged from a fresh simulation");
    }
  } else {
    const auto start = std::chrono::steady_clock::now();
    try {
      outcome = simulator_.simulate(snapshot_, portfolio_.policies()[index], arenas_[0]);
    } catch (const std::exception&) {
      failed = true;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    measured_ms = std::chrono::duration<double, std::milli>(elapsed).count();
  }
  double cost = config_.synthetic_overhead_ms;
  if (config_.use_measured_cost) cost += measured_ms;
  // Per-candidate budget blow-out: the time was spent (cost is charged),
  // but the result is not trusted into the ranking.
  if (!failed && config_.candidate_timeout_ms > 0.0 &&
      cost > config_.candidate_timeout_ms)
    failed = true;
  if (failed)
    quarantined.push_back(index);
  else {
    scores.push_back(PolicyScore{index, outcome.utility, cost});
    if (memo_on && !hit) slot = MemoSlot{snapshot_.fingerprint, outcome, true};
  }
  if (tracing)
    recorder_->append_event(
        obs::TraceEvent{"selector.candidate", 'E', recorder_->now_us(), 0, {}});
  return cost;
}

double TimeConstrainedSelector::run_wave(std::span<const std::size_t> wave,
                                         std::vector<PolicyScore>& scores,
                                         std::vector<std::size_t>& quarantined,
                                         std::size_t& memo_hits) {
  PSCHED_ASSERT(!wave.empty());
  // A singleton wave runs inline on the coordinating thread — this is the
  // whole story when eval_threads = 1, which keeps that path bit-identical
  // to the sequential algorithm (no pool, no extra timing scopes).
  if (wave.size() == 1)
    return simulate_one(wave.front(), scores, quarantined, memo_hits);

  PSCHED_ASSERT(pool_ != nullptr);
  // Wave candidate tracing writes into per-slot buffers (lane 1 + slot),
  // merged in slot order after the batch barrier: workers never touch the
  // shared sink directly, so the trace stream is deterministic for a fixed
  // eval_threads even though workers finish in any order.
  const bool tracing = recorder_ != nullptr && recorder_->tracing_on();
  std::vector<std::vector<obs::TraceEvent>> slot_events(tracing ? wave.size() : 0);
  const auto trace_slot = [&](std::size_t k, std::int64_t b_us, std::int64_t e_us) {
    slot_events[k].push_back(obs::TraceEvent{"selector.candidate", 'B', b_us,
                                             static_cast<std::uint32_t>(1 + k),
                                             candidate_args(wave[k])});
    slot_events[k].push_back(obs::TraceEvent{
        "selector.candidate", 'E', e_us, static_cast<std::uint32_t>(1 + k), {}});
  };
  const auto merge_slots = [&] {
    if (!tracing) return;
    for (std::vector<obs::TraceEvent>& buffer : slot_events)
      recorder_->merge_events(std::move(buffer));
  };

  // Memo lookups happen here, on the coordinating thread, before the wave
  // is dispatched: workers only read the precomputed hit flags and outcome
  // copies, never the cache itself, and a hit slot skips its simulation
  // (except under verify_memo, which re-simulates into the slot's own arena
  // to cross-check). Stores happen after the barrier, also coordinating-
  // thread-only — the cache is never touched concurrently.
  const bool memo_on = memo_enabled();
  std::vector<unsigned char> wave_hit(wave.size(), 0);
  std::vector<SimOutcome> outcomes(wave.size());
  if (memo_on) {
    for (std::size_t k = 0; k < wave.size(); ++k) {
      const MemoSlot& slot = memo_[wave[k]];
      if (slot.valid && slot.fp == snapshot_.fingerprint) {
        wave_hit[k] = 1;
        outcomes[k] = slot.outcome;
      }
    }
  }
  const auto commit_memo = [&](std::size_t k) {
    memo_hits += wave_hit[k] != 0 ? 1 : 0;
    if (memo_on && wave_hit[k] == 0)
      memo_[wave[k]] = MemoSlot{snapshot_.fingerprint, outcomes[k], true};
  };

  if (config_.budget_mode == BudgetMode::kFixedCount) {
    // Deterministic accounting: workers fill disjoint outcome slots without
    // touching a budget clock; each candidate charges one unit, so a wave
    // costs its size and the budget drains exactly as in the sequential run —
    // that (plus the quota-capped wave fill in select()) is what makes the
    // candidate set identical across eval_threads widths. (Trace timestamps
    // come from the recorder's own clock and feed reporting only.)
    // Worker exceptions must not escape run_batch (it rethrows the first
    // onto the coordinating thread): each slot traps its own failure into a
    // disjoint flag byte (unsigned char, not vector<bool> — slots must be
    // independently writable).
    std::vector<unsigned char> wave_failed(wave.size(), 0);
    pool_->run_batch(wave.size(), [&](std::size_t k) {
      const std::int64_t b_us = tracing ? recorder_->now_us() : 0;
      if (wave_hit[k] != 0) {
        if (config_.verify_memo) {
          const SimOutcome fresh = simulator_.simulate(
              snapshot_, portfolio_.policies()[wave[k]], arenas_[k]);
          PSCHED_ASSERT_MSG(bit_identical(fresh, outcomes[k]),
                            "memo hit diverged from a fresh simulation");
        }
      } else {
        try {
          outcomes[k] =
              simulator_.simulate(snapshot_, portfolio_.policies()[wave[k]], arenas_[k]);
        } catch (const std::exception&) {
          wave_failed[k] = 1;
        }
      }
      if (tracing) trace_slot(k, b_us, recorder_->now_us());
    });
    merge_slots();
    for (std::size_t k = 0; k < wave.size(); ++k) {
      if (wave_failed[k] != 0) {
        quarantined.push_back(wave[k]);
      } else {
        scores.push_back(PolicyScore{wave[k], outcomes[k].utility, 1.0});
        commit_memo(k);
      }
    }
    return static_cast<double>(wave.size());
  }
  std::vector<double> measured_ms(wave.size(), 0.0);
  std::vector<unsigned char> wave_failed(wave.size(), 0);
  pool_->run_batch(wave.size(), [&](std::size_t k) {
    const std::int64_t b_us = tracing ? recorder_->now_us() : 0;
    if (wave_hit[k] != 0) {
      // Zero measured cost by definition (see simulate_one); the verify
      // re-simulation is out-of-band and must not enter the budget.
      if (config_.verify_memo) {
        const SimOutcome fresh = simulator_.simulate(
            snapshot_, portfolio_.policies()[wave[k]], arenas_[k]);
        PSCHED_ASSERT_MSG(bit_identical(fresh, outcomes[k]),
                          "memo hit diverged from a fresh simulation");
      }
    } else {
      const auto start = std::chrono::steady_clock::now();
      try {
        outcomes[k] =
            simulator_.simulate(snapshot_, portfolio_.policies()[wave[k]], arenas_[k]);
      } catch (const std::exception&) {
        wave_failed[k] = 1;
      }
      const auto elapsed = std::chrono::steady_clock::now() - start;
      measured_ms[k] = std::chrono::duration<double, std::milli>(elapsed).count();
    }
    if (tracing) trace_slot(k, b_us, recorder_->now_us());
  });
  merge_slots();

  // Scores append in wave (= submission) order, so the ranking input is
  // independent of which worker finished first. The wave's budget charge is
  // the slowest member (they ran concurrently) plus one synthetic overhead;
  // failed members spent that wall time too, so they count toward it.
  double slowest_ms = 0.0;
  for (std::size_t k = 0; k < wave.size(); ++k) {
    double cost = config_.synthetic_overhead_ms;
    if (config_.use_measured_cost) {
      cost += measured_ms[k];
      slowest_ms = std::max(slowest_ms, measured_ms[k]);
    }
    if (wave_failed[k] == 0 && config_.candidate_timeout_ms > 0.0 &&
        cost > config_.candidate_timeout_ms)
      wave_failed[k] = 1;
    if (wave_failed[k] != 0) {
      quarantined.push_back(wave[k]);
    } else {
      scores.push_back(PolicyScore{wave[k], outcomes[k].utility, cost});
      commit_memo(k);
    }
  }
  return config_.synthetic_overhead_ms + slowest_ms;
}

SelectionResult TimeConstrainedSelector::select(
    std::span<const policy::QueuedJob> queue, const cloud::CloudProfile& profile,
    std::size_t preferred_index, std::span<const std::size_t> hints) {
  PSCHED_ASSERT_MSG(!queue.empty(), "selection on an empty queue is undefined");

  // Build the shared round snapshot once (DESIGN.md §11): every candidate
  // wave reads it, and its fingerprint keys the memo cache.
  snapshot_.build(queue, profile);

  const obs::Recorder::Scope round_scope(recorder_, "selector.round", 0);
  const bool obs_on = recorder_ != nullptr && recorder_->counters_on();

  // Reflection hints: pull the suggested policies out of whichever set they
  // sit in and queue them at the head of Smart (first hint simulated first).
  for (std::size_t h = hints.size(); h-- > 0;) {
    const std::size_t hint = hints[h];
    if (hint >= portfolio_.size()) continue;
    const auto drop = [hint](auto& container) {
      const auto it = std::find(container.begin(), container.end(), hint);
      if (it == container.end()) return false;
      container.erase(it);
      return true;
    };
    if (drop(smart_) || drop(stale_) || drop(poor_)) smart_.push_front(hint);
  }

  // Entry snapshot for the round record (after hint promotion, so the sizes
  // describe the sets Algorithm 1 actually drains). Taken only when
  // observed: the unobserved path must not copy the Smart set.
  const std::size_t smart_in = smart_.size();
  const std::size_t stale_in = stale_.size();
  const std::size_t poor_in = poor_.size();
  std::vector<std::size_t> smart_before;
  if (obs_on) smart_before.assign(smart_.begin(), smart_.end());

  const bool fixed = config_.budget_mode == BudgetMode::kFixedCount;
  const bool bounded =
      fixed ? config_.fixed_count > 0 : config_.time_constraint_ms > 0.0;
  const auto n = static_cast<double>(smart_.size() + stale_.size() + poor_.size());
  PSCHED_ASSERT(n > 0.0);

  // Phase 1: split the budget proportionally to the set sizes (Alg. 1 l.1-2).
  // In kFixedCount mode Delta is a simulation count (one unit per candidate);
  // otherwise it is milliseconds. Unbounded mode (Delta <= 0, or
  // fixed_count = 0) simulates the entire portfolio; the quotas are made
  // infinite directly — an empty set's share of infinity would be
  // 0 * inf = NaN and poison the leftover arithmetic.
  const double inf = std::numeric_limits<double>::infinity();
  const double delta = bounded ? (fixed ? static_cast<double>(config_.fixed_count)
                                        : config_.time_constraint_ms)
                               : inf;
  double quota_smart = bounded ? static_cast<double>(smart_.size()) / n * delta : inf;
  double quota_stale = bounded ? static_cast<double>(stale_.size()) / n * delta : inf;
  double quota_poor = bounded ? delta - quota_smart - quota_stale : inf;

  std::vector<PolicyScore> scores;
  scores.reserve(portfolio_.size());
  std::vector<std::size_t> quarantined;  // threw / blew per-candidate budget
  double charged_ms = 0.0;       // budget actually charged (sum of wave costs)
  std::size_t memo_hits = 0;     // candidates answered from the memo cache
  std::vector<std::size_t> wave;
  wave.reserve(wave_width_);

  // Waves fill with up to wave_width_ candidates on the coordinating thread
  // (front-of-set order; for Poor, RNG draws — also coordinating-thread-only,
  // so the draw sequence matches the sequential algorithm's pick-by-pick
  // sampling) and are simulated concurrently by run_wave.
  //
  // In fixed-count mode a wave additionally never overshoots the remaining
  // quota: the sequential algorithm runs exactly ceil(quota) more unit-cost
  // simulations before the budget flips non-positive, so capping the fill at
  // that count keeps the simulated candidate set — and therefore the whole
  // round — identical for every eval_threads width.
  const auto wave_cap = [&](double quota) {
    if (!(fixed && bounded)) return wave_width_;
    return std::min(wave_width_, static_cast<std::size_t>(std::ceil(quota)));
  };
  const auto drain_ordered = [&](std::deque<std::size_t>& set, double& quota) {
    while (!set.empty() && quota > 0.0) {
      wave.clear();
      while (!set.empty() && wave.size() < wave_cap(quota)) {
        wave.push_back(set.front());
        set.pop_front();
      }
      const double cost = run_wave(wave, scores, quarantined, memo_hits);
      quota -= cost;
      charged_ms += cost;
    }
  };

  // Phase 2a: Smart, in order, while its quota lasts (l.3-7).
  drain_ordered(smart_, quota_smart);
  // Phase 2b: Stale, in staleness order (l.8-12).
  drain_ordered(stale_, quota_stale);
  // Phase 2c: Poor, random picks, with the leftovers folded in (l.13-19).
  double quota = quota_poor + std::max(0.0, quota_smart) + std::max(0.0, quota_stale);
  while (!poor_.empty() && quota > 0.0) {
    wave.clear();
    while (!poor_.empty() && wave.size() < wave_cap(quota)) {
      const auto pick = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(poor_.size()) - 1));
      wave.push_back(poor_[pick]);
      poor_[pick] = poor_.back();
      poor_.pop_back();
    }
    const double cost = run_wave(wave, scores, quarantined, memo_hits);
    quota -= cost;
    charged_ms += cost;
  }

  // Phase 3: rearrange (l.20-24). Un-simulated Smart leftovers age into
  // Stale; the simulated policies re-rank into Smart (top lambda) and Poor.
  for (const std::size_t index : smart_) stale_.push_back(index);
  smart_.clear();
  // Quarantined candidates demote straight to Poor: they re-enter the
  // random sampling pool next round but never the ranking.
  for (const std::size_t index : quarantined) poor_.push_back(index);

  PSCHED_ASSERT_MSG(!scores.empty() || !quarantined.empty(),
                    "budget did not allow a single simulation");
  if (scores.empty()) {
    // Graceful degradation: every attempted candidate threw or blew its
    // per-candidate budget. Apply the last-known-good policy instead of
    // aborting the run; next round re-samples the quarantined set.
    SelectionResult result;
    result.degraded = true;
    result.quarantined = quarantined.size();
    result.memo_hits = memo_hits;
    result.best_index =
        preferred_index < portfolio_.size() ? preferred_index : 0;
    result.best_utility = 0.0;
    result.total_cost_ms = charged_ms;
    if (obs_on) {
      obs::SelectionRoundRecord record;
      record.sim_now = profile.now;
      record.simulated = 0;
      record.budget_delta = bounded ? delta : 0.0;
      record.budget_charged = charged_ms;
      record.smart_in = smart_in;
      record.stale_in = stale_in;
      record.poor_in = poor_in;
      record.smart_out = smart_.size();
      record.stale_out = stale_.size();
      record.poor_out = poor_.size();
      record.quarantined = quarantined.size();
      record.memo_hits = memo_hits;
      record.chosen = result.best_index;
      record.chosen_utility = 0.0;
      record.tie_set = 0;
      record.tie_path = "degraded";
      recorder_->record_round(record);
      recorder_->counter_add("selector.rounds", 1.0);
      recorder_->counter_add("selector.quarantined",
                             static_cast<double>(quarantined.size()));
      recorder_->counter_add("selector.degraded_rounds", 1.0);
    }
    return result;
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [](const PolicyScore& a, const PolicyScore& b) {
                     if (a.utility != b.utility) return a.utility > b.utility;
                     return a.index < b.index;
                   });
  // Resolve exact ties at the head of the ranking (see TieBreak). The tie
  // set is the run of scores equal to the best within absolute epsilon.
  std::size_t tied = 1;
  while (tied < scores.size() &&
         scores[tied].utility >= scores.front().utility - 1e-9)
    ++tied;
  std::size_t winner = 0;
  switch (config_.tie_break) {
    case TieBreak::kFirstIndex:
      break;
    case TieBreak::kRandom:
      winner = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(tied) - 1));
      break;
    case TieBreak::kSticky:
      for (std::size_t i = 0; i < tied; ++i) {
        if (scores[i].index == preferred_index) {
          winner = i;
          break;
        }
      }
      break;
  }
  if (winner != 0) std::swap(scores[0], scores[winner]);

  const auto top = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(config_.lambda * static_cast<double>(scores.size()))));
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (i < top) smart_.push_back(scores[i].index);
    else poor_.push_back(scores[i].index);
  }

  SelectionResult result;
  result.best_index = scores.front().index;
  result.best_utility = scores.front().utility;
  result.total_cost_ms = charged_ms;
  result.quarantined = quarantined.size();
  result.memo_hits = memo_hits;
  result.scores = std::move(scores);

  if (obs_on) {
    obs::SelectionRoundRecord record;
    record.sim_now = profile.now;
    record.simulated = result.scores.size();
    record.budget_delta = bounded ? delta : 0.0;
    record.budget_charged = charged_ms;
    record.smart_in = smart_in;
    record.stale_in = stale_in;
    record.poor_in = poor_in;
    record.smart_out = smart_.size();
    record.stale_out = stale_.size();
    record.poor_out = poor_.size();
    for (const std::size_t index : smart_) {
      if (std::find(smart_before.begin(), smart_before.end(), index) ==
          smart_before.end())
        ++record.smart_churn;
    }
    record.quarantined = result.quarantined;
    record.memo_hits = memo_hits;
    record.chosen = result.best_index;
    record.chosen_utility = result.best_utility;
    record.tie_set = tied;
    if (tied <= 1) {
      record.tie_path = "unique";
    } else {
      switch (config_.tie_break) {
        case TieBreak::kRandom: record.tie_path = "random"; break;
        case TieBreak::kSticky: record.tie_path = "sticky"; break;
        case TieBreak::kFirstIndex: record.tie_path = "first-index"; break;
      }
    }
    recorder_->record_round(record);
    recorder_->counter_add("selector.rounds", 1.0);
    recorder_->counter_add("selector.candidates",
                           static_cast<double>(result.scores.size()));
    recorder_->counter_add("selector.budget_charged", charged_ms);
    if (result.quarantined > 0)
      recorder_->counter_add("selector.quarantined",
                             static_cast<double>(result.quarantined));
    const std::size_t attempted = result.scores.size() + result.quarantined;
    recorder_->counter_add("selector.memo_hits", static_cast<double>(memo_hits));
    recorder_->counter_add("selector.memo_misses",
                           static_cast<double>(attempted - memo_hits));
  }
  return result;
}

}  // namespace psched::core
