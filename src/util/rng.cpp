#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace psched::util {

std::uint64_t Rng::next_u64() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  PSCHED_ASSERT(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Lemire-style rejection-free-enough: modulo bias is < 2^-40 for the small
  // ranges used in the simulator; keep a single rejection loop for exactness.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range + 1) % range;
  std::uint64_t v = next_u64();
  while (v > limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double lambda) noexcept {
  PSCHED_ASSERT(lambda > 0.0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller without the cached second variate: two raw draws per sample
  // keeps the consumption pattern of the stream independent of call history.
  const double u1 = 1.0 - uniform();  // (0, 1]
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::weibull(double shape, double scale) noexcept {
  PSCHED_ASSERT(shape > 0.0 && scale > 0.0);
  return scale * std::pow(-std::log(1.0 - uniform()), 1.0 / shape);
}

double Rng::bounded_pareto(double alpha, double lo, double hi) noexcept {
  PSCHED_ASSERT(alpha > 0.0 && lo > 0.0 && hi > lo);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::int64_t Rng::zipf(std::int64_t n, double s) noexcept {
  PSCHED_ASSERT(n >= 1 && s > 0.0);
  // Rejection-inversion sampling (Hormann & Derflinger 1996). Exact for all
  // s != 1; for s == 1 the H integral degenerates to log, handled below.
  const auto h_integral = [s](double x) {
    const double lx = std::log(x);
    if (std::abs(s - 1.0) < 1e-12) return lx;
    return std::expm1((1.0 - s) * lx) / (1.0 - s);
  };
  const auto h_integral_inv = [s](double x) {
    if (std::abs(s - 1.0) < 1e-12) return std::exp(x);
    double t = x * (1.0 - s);
    if (t < -1.0) t = -1.0;  // numerical clamp
    return std::exp(std::log1p(t) / (1.0 - s));
  };
  const auto h = [s](double x) { return std::exp(-s * std::log(x)); };

  const double hi = h_integral(static_cast<double>(n) + 0.5);
  const double lo = h_integral(0.5);
  const double d = hi - lo;
  for (;;) {
    const double u = lo + uniform() * d;
    const double x = h_integral_inv(u);
    auto k = static_cast<std::int64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    const double kd = static_cast<double>(k);
    if (u >= h_integral(kd + 0.5) - h(kd)) return k;
  }
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  PSCHED_ASSERT_MSG(total > 0.0, "weighted_index needs a positive weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;  // numerical fallthrough
}

}  // namespace psched::util
