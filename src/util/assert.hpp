#pragma once
// Lightweight contract checking. PSCHED_ASSERT is active in all build types:
// simulator correctness bugs must never be silently ignored in Release, as
// benchmarks are built Release and are the primary consumers.
//
// Failure reports carry the *simulation* context — the simulated clock, the
// event being dispatched, and the governing policy triple — which the engine
// publishes into a thread-local SimContext as it runs. Without it, an
// assertion deep inside the billing or allocation code is unactionable ("a
// VM was released twice" — at which simulated second? under which policy?).
// The validation subsystem (src/validate) routes invariant violations
// through the same reporting path via invariant_fail().

#include <cstdio>
#include <cstdlib>

namespace psched::detail {

/// Per-thread simulation context attached to assertion/invariant failures.
/// The engine updates it on every dispatched event (a few plain stores; the
/// policy name is re-formatted only when the governing policy changes).
struct SimContext {
  double now = -1.0;            ///< simulated clock; < 0 means "outside a run"
  const char* event = nullptr;  ///< static label: "tick", "arrival", ...
  char policy[96] = {};         ///< governing policy triple ("" when none)

  void set(double t, const char* event_label) noexcept {
    now = t;
    event = event_label;
  }
  void set_policy(const char* name) noexcept {
    std::snprintf(policy, sizeof(policy), "%s", name != nullptr ? name : "");
  }
  void clear() noexcept {
    now = -1.0;
    event = nullptr;
    policy[0] = '\0';
  }
};

inline SimContext& sim_context() noexcept {
  thread_local SimContext context;
  return context;
}

inline void print_sim_context() noexcept {
  const SimContext& c = sim_context();
  if (c.now < 0.0 && c.event == nullptr && c.policy[0] == '\0') return;
  std::fprintf(stderr, "  sim context: t=%.3f s, event=%s, policy=%s\n", c.now,
               c.event != nullptr ? c.event : "?",
               c.policy[0] != '\0' ? c.policy : "-");
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "psched assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  print_sim_context();
  std::abort();
}

/// Abort path for InvariantChecker violations (validate/invariant_checker):
/// same report shape and the same simulation context as PSCHED_ASSERT, but
/// named by invariant rather than by expression text.
[[noreturn]] inline void invariant_fail(const char* invariant, const char* detail) {
  std::fprintf(stderr, "psched invariant violated: %s\n  %s\n", invariant,
               detail ? detail : "");
  print_sim_context();
  std::abort();
}

}  // namespace psched::detail

#define PSCHED_ASSERT(expr)                                                \
  do {                                                                     \
    if (!(expr)) ::psched::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PSCHED_ASSERT_MSG(expr, msg)                                       \
  do {                                                                     \
    if (!(expr)) ::psched::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
