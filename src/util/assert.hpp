#pragma once
// Lightweight contract checking. PSCHED_ASSERT is active in all build types:
// simulator correctness bugs must never be silently ignored in Release, as
// benchmarks are built Release and are the primary consumers.

#include <cstdio>
#include <cstdlib>

namespace psched::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "psched assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace psched::detail

#define PSCHED_ASSERT(expr)                                                \
  do {                                                                     \
    if (!(expr)) ::psched::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PSCHED_ASSERT_MSG(expr, msg)                                       \
  do {                                                                     \
    if (!(expr)) ::psched::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
