#pragma once
// Tolerance-based floating-point comparison helpers — the sanctioned
// alternative to `==`/`!=` on float/double, which psched-lint rule D4 bans
// outside src/util/ (exact FP equality is representation-dependent: it
// breaks under -ffast-math, x87 excess precision, and FMA contraction, all
// of which vary by toolchain and silently fork "deterministic" results).
//
// Semantics follow the usual combined-tolerance scheme: values are equal
// when they differ by at most `abs_tol`, or by at most `rel_tol` times the
// larger magnitude. The absolute term handles comparisons near zero, where
// a pure relative test can never succeed.
//
// Simulation code that needs *bit-identical* reproduction (golden files,
// the determinism matrix) should compare through integer representations
// or serialized text instead — a tolerance is a statement that small
// divergence is acceptable, which is exactly wrong for those tests.

#include <algorithm>
#include <cmath>

namespace psched::util {

inline constexpr double kDefaultRelTol = 1e-9;
inline constexpr double kDefaultAbsTol = 1e-12;

/// True when |x| is within `abs_tol` of zero.
[[nodiscard]] inline bool near_zero(double x, double abs_tol = kDefaultAbsTol) {
  return std::fabs(x) <= abs_tol;
}

/// Combined relative/absolute tolerance equality. NaN compares unequal to
/// everything (including NaN), matching IEEE expectations.
[[nodiscard]] inline bool approx_eq(double a, double b,
                                    double rel_tol = kDefaultRelTol,
                                    double abs_tol = kDefaultAbsTol) {
  if (a == b) return true;  // fast path; also covers matching infinities
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * scale;
}

/// approx_eq over `a <= b`: true when a is below b or within tolerance.
[[nodiscard]] inline bool approx_le(double a, double b,
                                    double rel_tol = kDefaultRelTol,
                                    double abs_tol = kDefaultAbsTol) {
  return a <= b || approx_eq(a, b, rel_tol, abs_tol);
}

}  // namespace psched::util
