#pragma once
// Deterministic 128-bit fingerprints for selection-round memoization
// (DESIGN.md §11). A Fingerprint identifies a byte-exact problem instance:
// the selector hashes the round snapshot (queue contents + cloud profile)
// and combines in the candidate's portfolio index; a memo slot whose stored
// fingerprint matches guarantees — up to a 2^-128 collision, see below —
// that the stored SimOutcome is the one a fresh simulation would produce.
//
// Design constraints:
//  * Pure function of the input bytes: no pointers, no addresses, no
//    iteration over unordered containers (psched-lint rule D2), no clock or
//    entropy reads (rule D1). Same inputs -> same fingerprint on every
//    platform, build, and thread count.
//  * Doubles are hashed through their IEEE-754 bit pattern (std::bit_cast),
//    not through rounding or formatting: two inputs fingerprint equal iff
//    they are bit-identical, which is exactly the granularity at which the
//    online simulator is deterministic. (-0.0 and 0.0 hash differently;
//    that is deliberate — they are different inputs.)
//  * Two independent 64-bit FNV-1a streams (different offset bases) make
//    accidental collision probability ~2^-128 per lookup. The memo layer
//    treats a matching 128-bit fingerprint as proof of input identity; the
//    paranoid re-check lives behind SelectorConfig::verify_memo.

#include <bit>
#include <cstdint>

namespace psched::util {

/// Order-sensitive 128-bit hash accumulator (dual FNV-1a).
class Fingerprint {
 public:
  /// Mix one 64-bit word (byte-wise, little-endian lane order).
  constexpr void mix(std::uint64_t word) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
      const auto octet = static_cast<std::uint8_t>(word >> (8 * byte));
      lo_ = (lo_ ^ octet) * kPrime;
      hi_ = (hi_ ^ octet) * kPrime;
    }
  }

  /// Mix a double via its IEEE-754 bit pattern (bit-exact, no rounding).
  constexpr void mix(double value) noexcept { mix(std::bit_cast<std::uint64_t>(value)); }

  constexpr void mix(int value) noexcept {
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
  }
  constexpr void mix(bool value) noexcept { mix(static_cast<std::uint64_t>(value)); }

  [[nodiscard]] constexpr std::uint64_t lo() const noexcept { return lo_; }
  [[nodiscard]] constexpr std::uint64_t hi() const noexcept { return hi_; }

  /// Exact 128-bit equality (integer compare; no float semantics involved).
  [[nodiscard]] friend constexpr bool operator==(const Fingerprint& a,
                                                 const Fingerprint& b) noexcept {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }
  [[nodiscard]] friend constexpr bool operator!=(const Fingerprint& a,
                                                 const Fingerprint& b) noexcept {
    return !(a == b);
  }

  /// Derive the per-candidate fingerprint from a round fingerprint: the
  /// round hash extended with the portfolio index. Cheap (one mix), so the
  /// expensive part (hashing queue + profile) is shared by all candidates.
  [[nodiscard]] constexpr Fingerprint combined(std::size_t index) const noexcept {
    Fingerprint fp = *this;
    fp.mix(index);
    return fp;
  }

 private:
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;  // FNV-1a 64
  std::uint64_t lo_ = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  std::uint64_t hi_ = 0x6c62272e07bb0142ULL;  // FNV-1a *128* offset (hi word):
                                              // an independent second stream
};

}  // namespace psched::util
