#pragma once
// Column-aligned console tables and CSV emission for the benchmark harness.
// Every table/figure bench prints a human-readable table and can mirror the
// same rows to a CSV file for plotting.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace psched::util {

/// One table cell: text, integer, or floating point (fixed precision).
class Cell {
 public:
  Cell(std::string text) : value_(std::move(text)) {}           // NOLINT(google-explicit-constructor)
  Cell(const char* text) : value_(std::string(text)) {}         // NOLINT(google-explicit-constructor)
  Cell(std::int64_t v) : value_(v) {}                           // NOLINT(google-explicit-constructor)
  Cell(int v) : value_(static_cast<std::int64_t>(v)) {}         // NOLINT(google-explicit-constructor)
  Cell(std::size_t v) : value_(static_cast<std::int64_t>(v)) {} // NOLINT(google-explicit-constructor)
  Cell(double v, int precision = 2) : value_(Real{v, precision}) {} // NOLINT(google-explicit-constructor)

  [[nodiscard]] std::string str() const;
  [[nodiscard]] bool numeric() const noexcept { return !std::holds_alternative<std::string>(value_); }

 private:
  struct Real {
    double v;
    int precision;
  };
  std::variant<std::string, std::int64_t, Real> value_;
};

/// A simple rectangular table. Numeric cells right-align, text left-aligns.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<Cell> cells);
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  /// Cells of row `i` (bounds-unchecked; used by the bench JSON reporter).
  [[nodiscard]] const std::vector<Cell>& row(std::size_t i) const {
    return rows_[i];
  }

  /// Render with a title, header rule, and aligned columns.
  [[nodiscard]] std::string render(const std::string& title = {}) const;

  /// Write the table to `os` as RFC-4180-ish CSV (quotes only when needed).
  void write_csv(std::ostream& os) const;

  /// Convenience: write CSV to a file path; returns false on IO failure.
  bool save_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace psched::util
