#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace psched::util {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  PSCHED_ASSERT(hi > lo && bins > 0);
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  if (!std::isfinite(x)) {
    // NaN has no bucket and +-inf would be UB in the double->size_t cast
    // below; rejected samples are tracked but never binned or totalled.
    ++rejected_;
    return;
  }
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  // Range-check in double space: a huge x (e.g. 1e300) overflows size_t, and
  // casting such a value is undefined behavior before any index check could
  // run.
  const double pos = (x - lo_) / width_;
  if (pos >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(pos)];
}

std::size_t Histogram::count(std::size_t bin) const {
  PSCHED_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  PSCHED_ASSERT(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  peak = std::max({peak, underflow_, overflow_});
  std::string out;
  const auto row = [&](const char* label, std::size_t count) {
    out += label;
    const auto bar = count * width / peak;
    out.append(bar, '#');
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, " %zu\n", count);
    out += suffix;
  };
  // Clipped mass renders as explicit rows (only when present) so a plot of
  // a clipped distribution cannot pass for a complete one.
  if (underflow_ > 0) row(" underflow | ", underflow_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "%10.1f | ", bin_lo(i));
    row(label, counts_[i]);
  }
  if (overflow_ > 0) row("  overflow | ", overflow_);
  return out;
}

TimeSeriesCounter::TimeSeriesCounter(double bucket_seconds) : bucket_(bucket_seconds) {
  PSCHED_ASSERT(bucket_seconds > 0.0);
}

void TimeSeriesCounter::add(double t) noexcept {
  if (!std::isfinite(t)) {
    ++rejected_;
    return;
  }
  if (t < 0.0) t = 0.0;
  // Cap the growable bucket range before the double->size_t cast: an
  // un-capped t (1e300, +inf) would be UB in the cast and then resize() to
  // an astronomical index.
  const double pos = t / bucket_;
  if (pos >= static_cast<double>(kMaxBuckets)) {
    ++overflow_;
    return;
  }
  const auto bucket = static_cast<std::size_t>(pos);
  if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
  ++counts_[bucket];
}

std::size_t TimeSeriesCounter::count(std::size_t bucket) const {
  PSCHED_ASSERT(bucket < counts_.size());
  return counts_[bucket];
}

double TimeSeriesCounter::mean_count() const noexcept {
  if (counts_.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t c : counts_) s += static_cast<double>(c);
  return s / static_cast<double>(counts_.size());
}

double TimeSeriesCounter::max_count() const noexcept {
  std::size_t m = 0;
  for (std::size_t c : counts_) m = std::max(m, c);
  return static_cast<double>(m);
}

double TimeSeriesCounter::cv2() const noexcept {
  if (counts_.size() < 2) return 0.0;
  const double mu = mean_count();
  if (mu == 0.0) return 0.0;
  double var = 0.0;
  for (std::size_t c : counts_) {
    const double d = static_cast<double>(c) - mu;
    var += d * d;
  }
  var /= static_cast<double>(counts_.size() - 1);
  return var / (mu * mu);
}

}  // namespace psched::util
