#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace psched::util {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  PSCHED_ASSERT(hi > lo && bins > 0);
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

std::size_t Histogram::count(std::size_t bin) const {
  PSCHED_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  PSCHED_ASSERT(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "%10.1f | ", bin_lo(i));
    out += label;
    const auto bar = counts_[i] * width / peak;
    out.append(bar, '#');
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, " %zu\n", counts_[i]);
    out += suffix;
  }
  return out;
}

TimeSeriesCounter::TimeSeriesCounter(double bucket_seconds) : bucket_(bucket_seconds) {
  PSCHED_ASSERT(bucket_seconds > 0.0);
}

void TimeSeriesCounter::add(double t) noexcept {
  if (t < 0.0) t = 0.0;
  const auto bucket = static_cast<std::size_t>(t / bucket_);
  if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
  ++counts_[bucket];
}

std::size_t TimeSeriesCounter::count(std::size_t bucket) const {
  PSCHED_ASSERT(bucket < counts_.size());
  return counts_[bucket];
}

double TimeSeriesCounter::mean_count() const noexcept {
  if (counts_.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t c : counts_) s += static_cast<double>(c);
  return s / static_cast<double>(counts_.size());
}

double TimeSeriesCounter::max_count() const noexcept {
  std::size_t m = 0;
  for (std::size_t c : counts_) m = std::max(m, c);
  return static_cast<double>(m);
}

double TimeSeriesCounter::cv2() const noexcept {
  if (counts_.size() < 2) return 0.0;
  const double mu = mean_count();
  if (mu == 0.0) return 0.0;
  double var = 0.0;
  for (std::size_t c : counts_) {
    const double d = static_cast<double>(c) - mu;
    var += d * d;
  }
  var /= static_cast<double>(counts_.size() - 1);
  return var / (mu * mu);
}

}  // namespace psched::util
