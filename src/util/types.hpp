#pragma once
// Fundamental scalar types shared across psched.
//
// Simulation time is kept in double-precision seconds since trace start.
// All determinism in the simulator comes from total event ordering
// (time, sequence number), never from floating-point tie-breaking.

#include <cstdint>
#include <limits>

namespace psched {

/// Simulated time in seconds since the start of the experiment.
using SimTime = double;

/// A duration in simulated seconds.
using SimDuration = double;

/// Sentinel for "never" / "unset" time values.
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::infinity();

/// Seconds per charging hour in the EC2-style billing model.
inline constexpr SimDuration kSecondsPerHour = 3600.0;

/// Identifier types. Strong-ish typedefs: distinct names, same representation.
using JobId = std::int64_t;
using VmId = std::int64_t;
using UserId = std::int32_t;

inline constexpr JobId kInvalidJob = -1;
inline constexpr VmId kInvalidVm = -1;

}  // namespace psched
