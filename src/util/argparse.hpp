#pragma once
// Minimal command-line flag parsing for benches and examples.
// Supports `--name value`, `--name=value`, and boolean `--name`.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace psched::util {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;

  /// Numeric flag accessors parse strictly: the whole value must be one
  /// in-range number ("12x", "1e999", "nan", "inf" are all malformed). A
  /// malformed value is a usage error — it prints "error: --name wants ..."
  /// and exits 1 — never a silently misparsed 0.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback = false) const;

  /// Strict full-string parsers behind the accessors, reusable for compound
  /// flag fields ("name:price:boot"): reject empty text, trailing garbage,
  /// out-of-range values, and non-finite doubles. False leaves `out` alone.
  [[nodiscard]] static bool parse_int(const std::string& text, std::int64_t& out);
  [[nodiscard]] static bool parse_double(const std::string& text, double& out);

  /// Positional (non-flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace psched::util
