#pragma once
// Clang thread-safety annotation macros (DESIGN.md §8.4) plus a thin
// capability-annotated mutex wrapper. Under clang the macros expand to the
// `__attribute__((...))` family consumed by -Wthread-safety, turning the
// locking discipline documented here into a compile-time check; under every
// other compiler they expand to nothing, so the annotated code builds
// unchanged with gcc. The `lint` CMake preset (PSCHED_THREAD_SAFETY=ON)
// promotes the analysis to -Werror=thread-safety on clang builds.
//
// Two kinds of marker live here:
//
//  * Real capabilities (PSCHED_GUARDED_BY, PSCHED_REQUIRES, ...): checkable
//    claims about data protected by a util::Mutex. Use these for anything
//    accessed from more than one thread (ThreadPool's queue, batch error
//    slots).
//  * PSCHED_CONFINED_TO(description): a documentation-only marker for state
//    that is single-threaded by construction — the selector's coordinator
//    state, the invariant checker's observer hooks. It expands to nothing
//    under every compiler on purpose: inventing a fake capability for
//    "the coordinating thread" would make the clang analysis claim to verify
//    an invariant it cannot see. Confinement is instead enforced by the
//    determinism tests (bit-identical results across eval_threads widths).

#if defined(__clang__)
#define PSCHED_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PSCHED_THREAD_ANNOTATION(x)
#endif

#define PSCHED_CAPABILITY(x) PSCHED_THREAD_ANNOTATION(capability(x))
#define PSCHED_SCOPED_CAPABILITY PSCHED_THREAD_ANNOTATION(scoped_lockable)
#define PSCHED_GUARDED_BY(x) PSCHED_THREAD_ANNOTATION(guarded_by(x))
#define PSCHED_PT_GUARDED_BY(x) PSCHED_THREAD_ANNOTATION(pt_guarded_by(x))
#define PSCHED_ACQUIRE(...) \
  PSCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PSCHED_RELEASE(...) \
  PSCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PSCHED_TRY_ACQUIRE(...) \
  PSCHED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PSCHED_REQUIRES(...) \
  PSCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PSCHED_EXCLUDES(...) PSCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PSCHED_ASSERT_CAPABILITY(x) PSCHED_THREAD_ANNOTATION(assert_capability(x))
#define PSCHED_RETURN_CAPABILITY(x) PSCHED_THREAD_ANNOTATION(lock_returned(x))
#define PSCHED_NO_THREAD_SAFETY_ANALYSIS \
  PSCHED_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Documentation-only confinement marker: the member (or method) is touched
/// exclusively by the named logical thread, so no lock guards it. Always
/// expands to nothing — see the file comment for why this is deliberate.
#define PSCHED_CONFINED_TO(thread_description)

#include <condition_variable>
#include <mutex>

namespace psched::util {

/// std::mutex with the `capability` annotation so PSCHED_GUARDED_BY members
/// can name it. Satisfies BasicLockable; pair with MutexLock (or lock/unlock
/// directly in the rare manual case).
class PSCHED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PSCHED_ACQUIRE() { m_.lock(); }
  void unlock() PSCHED_RELEASE() { m_.unlock(); }
  bool try_lock() PSCHED_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII scoped lock over Mutex, annotated as a scoped capability. Exposes
/// lock()/unlock() (BasicLockable) so it can be handed to
/// std::condition_variable_any::wait — clang tracks the capability through
/// the explicit while-wait loops used in ThreadPool. Not movable: a moved-
/// from scoped capability is exactly the state the analysis cannot model.
class PSCHED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) PSCHED_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() PSCHED_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Re-acquire / release mid-scope, for condition_variable_any::wait. The
  /// destructor unconditionally unlocks, so callers must leave the lock held
  /// on every path out of the scope (wait() guarantees this).
  void lock() PSCHED_ACQUIRE() { m_.lock(); }
  void unlock() PSCHED_RELEASE() { m_.unlock(); }

 private:
  Mutex& m_;
};

/// Condition variable usable with util::MutexLock. condition_variable_any
/// works with any BasicLockable, which keeps the annotated lock type in the
/// wait loop where clang's analysis can see it.
using CondVar = std::condition_variable_any;

}  // namespace psched::util
