#include "util/argparse.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <system_error>

namespace psched::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      flags_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
      continue;
    }
    // `--name value` unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string_view(argv[i + 1]).starts_with("--") == false) {
      flags_.emplace(std::string(arg), std::string(argv[++i]));
    } else {
      flags_.emplace(std::string(arg), "true");
    }
  }
}

bool ArgParser::has(const std::string& name) const { return flags_.contains(name); }

std::string ArgParser::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

namespace {

[[noreturn]] void malformed(const std::string& name, const char* wants,
                            const std::string& got) {
  std::fprintf(stderr, "error: --%s wants %s, got '%s'\n", name.c_str(), wants,
               got.c_str());
  std::exit(1);
}

}  // namespace

bool ArgParser::parse_int(const std::string& text, std::int64_t& out) {
  std::int64_t value = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [end, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc{} || end != last) return false;
  out = value;
  return true;
}

bool ArgParser::parse_double(const std::string& text, double& out) {
  double value = 0.0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [end, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || end != last || !std::isfinite(value)) return false;
  out = value;
  return true;
}

std::int64_t ArgParser::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::int64_t value = 0;
  if (!parse_int(it->second, value)) malformed(name, "an integer", it->second);
  return value;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  double value = 0.0;
  if (!parse_double(it->second, value)) malformed(name, "a finite number", it->second);
  return value;
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace psched::util
