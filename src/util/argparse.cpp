#include "util/argparse.hpp"

#include <cstdlib>
#include <string_view>

namespace psched::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      flags_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
      continue;
    }
    // `--name value` unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string_view(argv[i + 1]).starts_with("--") == false) {
      flags_.emplace(std::string(arg), std::string(argv[++i]));
    } else {
      flags_.emplace(std::string(arg), "true");
    }
  }
}

bool ArgParser::has(const std::string& name) const { return flags_.contains(name); }

std::string ArgParser::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace psched::util
