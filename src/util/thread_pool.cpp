#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace psched::util {

namespace {

/// Shared between the run_batch caller and its helper tasks. Heap-allocated
/// and reference-counted because helpers may be scheduled after the batch is
/// already drained and run_batch has returned.
struct BatchState {
  BatchState(std::size_t n_, std::function<void(std::size_t)> fn_)
      : n(n_), fn(std::move(fn_)) {}
  const std::size_t n;
  const std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  Mutex mutex;
  CondVar cv;
  std::exception_ptr error PSCHED_GUARDED_BY(mutex);
};

/// Claim and run batch indices until the index space is exhausted. Failed
/// tasks still count as done so the waiter wakes.
void drain_batch(const std::shared_ptr<BatchState>& state) {
  for (;;) {
    const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->n) return;
    try {
      state->fn(i);
    } catch (...) {
      MutexLock lock(state->mutex);
      if (!state->error) state->error = std::current_exception();
    }
    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == state->n) {
      MutexLock lock(state->mutex);
      state->cv.notify_all();
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      // Explicit while-wait (not wait-with-predicate): the thread-safety
      // analysis cannot see through a predicate lambda, but it tracks the
      // capability across condition_variable_any::wait on the scoped lock.
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  Mutex error_mutex;
  const std::size_t tasks = std::min(n, size());
  std::vector<std::future<void>> futures;
  futures.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          MutexLock lock(error_mutex);
          if (!error) error = std::current_exception();
          return;
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_batch(std::size_t n, std::function<void(std::size_t)> fn) {
  if (n == 0) return;
  if (n == 1) {  // nothing to fan out; run inline, exceptions propagate as-is
    fn(0);
    return;
  }
  auto state = std::make_shared<BatchState>(n, std::move(fn));
  // Helpers beyond n-1 could never claim an index; beyond size() they could
  // never run concurrently. Their futures are discarded: completion is
  // tracked by the batch's own done-count, so the caller does not stall on
  // helpers the pool schedules late (or never, if the batch drains first).
  const std::size_t helpers = std::min(n - 1, size());
  for (std::size_t h = 0; h < helpers; ++h) {
    (void)submit([state] { drain_batch(state); });
  }
  drain_batch(state);
  MutexLock lock(state->mutex);
  while (state->done.load(std::memory_order_acquire) != state->n) {
    state->cv.wait(lock);
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace psched::util
