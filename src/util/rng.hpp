#pragma once
// Deterministic random-number generation.
//
// We deliberately avoid <random>'s distribution objects: their output
// sequences are implementation-defined, which would make experiment results
// differ across standard libraries. The engine is SplitMix64 (Steele et al.,
// "Fast splittable pseudorandom number generators", OOPSLA'14), and every
// distribution below is implemented directly so a given seed reproduces the
// exact same trace everywhere.

#include <cstdint>
#include <vector>

namespace psched::util {

/// SplitMix64 engine. Passes BigCrush; 2^64 period; trivially splittable,
/// which we use to derive independent per-component streams from one seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Derive an independent child stream (stable: same parent state + same
  /// call order -> same child). Advances this stream once.
  [[nodiscard]] Rng split() noexcept { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

  /// Uniform in [0, 1).
  double uniform() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda) noexcept;

  /// Standard normal via Box-Muller (deterministic variant, no caching).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Weibull with shape k and scale lambda.
  double weibull(double shape, double scale) noexcept;

  /// Pareto (bounded): inverse-CDF sampling in [lo, hi] with tail index alpha.
  double bounded_pareto(double alpha, double lo, double hi) noexcept;

  /// Zipf-distributed rank in [1, n] with exponent s (rejection-inversion,
  /// W. Hormann & G. Derflinger). Used for user-activity skew.
  std::int64_t zipf(std::int64_t n, double s) noexcept;

  /// Sample an index in [0, weights.size()) proportionally to weights.
  /// Weights need not be normalized; requires at least one positive weight.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Current stream position (the whole engine state is one word). Exposed
  /// for checkpoint digests (util/state_digest.hpp): two Rngs with equal
  /// state produce identical draw sequences forever.
  [[nodiscard]] std::uint64_t state() const noexcept { return state_; }

 private:
  std::uint64_t state_;
};

}  // namespace psched::util
