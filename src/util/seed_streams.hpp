#pragma once
// Central registry of named seed streams (psched-lint rule D5).
//
// Every stochastic subsystem derives its own RNG stream from the run's root
// seed via `cloud::derive_stream_seed(root, <stream name>)` — FNV-1a over
// the name, SplitMix-mixed with the root — so enabling one hazard class
// never perturbs another (DESIGN.md §10, §12). That isolation silently
// breaks if two subsystems pick the same stream name: both would draw from
// the *same* sequence, correlating e.g. spot revocations with price-walk
// steps without failing a single test. This header is therefore the one
// place stream names may be spelled; psched-lint's cross-TU rule D5
// enforces that
//
//   * every `PSCHED_SEED_STREAM` registration lives in this file,
//   * no two registrations share a name (or a constant identifier), and
//   * every `derive_stream_seed` call site passes either a constant
//     registered here or a string literal whose name is registered here.
//
// To add a stream: register it below with a comment naming its owner, then
// pass the constant at the derivation site (see CONTRIBUTING.md, "Adding a
// seed stream").

#include <string_view>

namespace psched::util {

/// Registers a seed-stream name. psched-lint pass 1 records each expansion
/// site as a registration; pass 2 rejects duplicates and uses of
/// unregistered names (rule D5).
#define PSCHED_SEED_STREAM(ident, name) \
  inline constexpr std::string_view ident = name

PSCHED_SEED_STREAM(kStreamBoot, "boot");      ///< FailureModel: Bernoulli VM boot-failure draws
PSCHED_SEED_STREAM(kStreamCrash, "crash");    ///< FailureModel: exponential mid-lease crash times
PSCHED_SEED_STREAM(kStreamOutage, "outage");  ///< FailureModel: provider API outage windows
PSCHED_SEED_STREAM(kStreamBackoff, "backoff");///< ClusterSim engine: lease-retry backoff jitter
PSCHED_SEED_STREAM(kStreamSpot, "spot");      ///< PricingModel: spot-revocation times
PSCHED_SEED_STREAM(kStreamWalk, "walk");      ///< PricingModel: price random-walk steps
PSCHED_SEED_STREAM(kStreamTenantWorkload, "tenant-workload");  ///< MultiTenantExperiment: per-tenant trace-generation seeds
PSCHED_SEED_STREAM(kStreamTenantFailure, "tenant-failure");    ///< MultiTenantExperiment: per-tenant FailureConfig root seeds

}  // namespace psched::util
