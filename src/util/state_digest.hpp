#pragma once
// Bit-exact state digests for the checkpoint subsystem (DESIGN.md §14).
//
// A StateDigest is an ordered list of named 64-bit values capturing the
// complete mutable state of a simulation at an epoch boundary: RNG stream
// positions, event/queue counters, fleet and billing figures, selector
// partitions, metric accumulators. Doubles are folded through their
// IEEE-754 bit pattern (std::bit_cast, the fingerprint.hpp idiom) — never
// through decimal formatting — so two digests compare equal iff the
// underlying states are bit-identical, which is exactly the granularity at
// which the engine is deterministic.
//
// Rules for capture code:
//  * entries are appended in a deterministic order (capture routines run on
//    the coordinating thread over deterministic state), so digests compare
//    as plain ordered sequences;
//  * unordered containers must be folded through the order-insensitive
//    accumulator below (psched-lint rule D2: never iterate an unordered
//    map into order-sensitive output);
//  * no wall-clock quantity may ever enter a digest (rule D1): measured
//    selection costs and phase timers differ across runs of identical
//    simulations and would make an honest resume look corrupt.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace psched::util {

/// One order-insensitive accumulator for folding an unordered container
/// into a single digest entry: hash each item with `item_hash` seeded mixes,
/// then combine with commutative addition so iteration order cannot leak.
class UnorderedFold {
 public:
  /// Finalize one item's accumulated words into the fold. Typical use:
  /// per item, build a Fingerprint-style hash of its fields via mix(),
  /// then absorb().
  void absorb(std::uint64_t item_hash) noexcept {
    sum_ += item_hash;
    xor_ ^= item_hash;
    ++count_;
  }

  /// Combined order-insensitive value (sum and xor lanes mixed with count).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t v = sum_ ^ (xor_ * 0x9e3779b97f4a7c15ULL) ^ count_;
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    return v;
  }

 private:
  std::uint64_t sum_ = 0;
  std::uint64_t xor_ = 0;
  std::uint64_t count_ = 0;
};

/// SplitMix-style combiner for hashing one item's fields before absorbing
/// it into an UnorderedFold. Order-sensitive within the item (fields have a
/// fixed order), commutative across items (via the fold).
[[nodiscard]] constexpr std::uint64_t digest_mix(std::uint64_t h,
                                                 std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

[[nodiscard]] constexpr std::uint64_t digest_mix(std::uint64_t h, double v) noexcept {
  return digest_mix(h, std::bit_cast<std::uint64_t>(v));
}

class StateDigest {
 public:
  struct Entry {
    std::string name;
    std::uint64_t value = 0;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// Prefix prepended to every subsequently added name (multi-tenant
  /// captures scope each tenant's entries as "t<i>.<name>").
  void set_scope(std::string scope) { scope_ = std::move(scope); }
  [[nodiscard]] const std::string& scope() const noexcept { return scope_; }

  void add_u64(std::string_view name, std::uint64_t value) {
    entries_.push_back(Entry{scope_ + std::string(name), value});
  }
  void add_double(std::string_view name, double value) {
    add_u64(name, std::bit_cast<std::uint64_t>(value));
  }
  void add_bool(std::string_view name, bool value) {
    add_u64(name, static_cast<std::uint64_t>(value));
  }
  void add_size(std::string_view name, std::size_t value) {
    add_u64(name, static_cast<std::uint64_t>(value));
  }
  void add_fold(std::string_view name, const UnorderedFold& fold) {
    add_u64(name, fold.value());
  }

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] friend bool operator==(const StateDigest& a,
                                       const StateDigest& b) = default;

  /// Human-readable first difference versus `other` (name of the first
  /// entry that differs in name or value, or a size note); empty when the
  /// digests are bit-identical. Drives checkpoint rejection diagnostics.
  [[nodiscard]] std::string first_difference(const StateDigest& other) const {
    const std::size_t n = entries_.size() < other.entries_.size()
                              ? entries_.size()
                              : other.entries_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (entries_[i].name != other.entries_[i].name) {
        return "entry " + std::to_string(i) + ": name '" + entries_[i].name +
               "' vs '" + other.entries_[i].name + "'";
      }
      if (entries_[i].value != other.entries_[i].value) {
        return entries_[i].name;
      }
    }
    if (entries_.size() != other.entries_.size()) {
      return "entry count " + std::to_string(entries_.size()) + " vs " +
             std::to_string(other.entries_.size());
    }
    return {};
  }

 private:
  std::string scope_;
  std::vector<Entry> entries_;
};

}  // namespace psched::util
