#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace psched::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  PSCHED_ASSERT(p >= 0.0 && p <= 100.0);
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

double mean_of(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  PSCHED_ASSERT(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace psched::util
