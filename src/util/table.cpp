#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace psched::util {

std::string Cell::str() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return std::to_string(*i);
  const auto& r = std::get<Real>(value_);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", r.precision, r.v);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PSCHED_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<Cell> cells) {
  PSCHED_ASSERT_MSG(cells.size() == headers_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    auto& out = rendered.emplace_back();
    out.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      out.push_back(row[c].str());
      widths[c] = std::max(widths[c], out.back().size());
    }
  }

  std::ostringstream os;
  if (!title.empty()) os << "== " << title << " ==\n";
  const auto emit = [&](const std::vector<std::string>& cells,
                        const std::vector<Cell>* types) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool right = types != nullptr && (*types)[c].numeric();
      const auto pad = widths[c] - cells[c].size();
      if (c) os << "  ";
      if (right) os << std::string(pad, ' ') << cells[c];
      else os << cells[c] << std::string(pad, ' ');
    }
    os << '\n';
  };
  emit(headers_, nullptr);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (std::size_t r = 0; r < rows_.size(); ++r) emit(rendered[r], &rows_[r]);
  return os.str();
}

namespace {
void csv_field(std::ostream& os, const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    os << s;
    return;
  }
  os << '"';
  for (char ch : s) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    csv_field(os, headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      csv_field(os, row[c].str());
    }
    os << '\n';
  }
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_csv(f);
  return static_cast<bool>(f);
}

}  // namespace psched::util
