#pragma once
// Fixed-width and time-bucketed histograms. The time-bucketed variant backs
// the Figure-3 arrival-pattern reproduction (jobs submitted per 10-minute
// interval).

#include <cstddef>
#include <string>
#include <vector>

namespace psched::util {

/// Histogram over [lo, hi) with `bins` equal-width buckets plus
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Non-finite samples (NaN, +-inf); rejected, not counted in total().
  [[nodiscard]] std::size_t rejected() const noexcept { return rejected_; }

  /// Lower edge of a bucket.
  [[nodiscard]] double bin_lo(std::size_t bin) const;

  /// Render a terminal bar chart, one row per bucket (used by bench_fig3).
  [[nodiscard]] std::string ascii(std::size_t width = 60) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
  std::size_t rejected_ = 0;
};

/// Counts events into consecutive fixed-duration time buckets starting at 0.
/// Grows on demand; bucket index = floor(t / bucket_seconds).
class TimeSeriesCounter {
 public:
  /// Hard cap on the growable bucket range: one sample must not be able to
  /// resize the series to an arbitrary index (a year of 10-minute buckets is
  /// ~53k; 2^20 leaves ample headroom while bounding memory at a few MiB).
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

  explicit TimeSeriesCounter(double bucket_seconds);

  void add(double t) noexcept;

  [[nodiscard]] double bucket_seconds() const noexcept { return bucket_; }
  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bucket) const;
  [[nodiscard]] const std::vector<std::size_t>& counts() const noexcept { return counts_; }
  /// Samples beyond kMaxBuckets * bucket_seconds.
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  /// Non-finite samples (NaN, +-inf); rejected outright.
  [[nodiscard]] std::size_t rejected() const noexcept { return rejected_; }

  /// Summary helpers for characterising burstiness.
  [[nodiscard]] double mean_count() const noexcept;
  [[nodiscard]] double max_count() const noexcept;
  /// Squared coefficient of variation of per-bucket counts; >> 1 == bursty.
  [[nodiscard]] double cv2() const noexcept;

 private:
  double bucket_;
  std::vector<std::size_t> counts_;
  std::size_t overflow_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace psched::util
