#pragma once
// Streaming and batch statistics used by the metrics collector and the
// benchmark harness.

#include <cstddef>
#include <span>
#include <vector>

namespace psched::util {

/// Numerically stable streaming mean/variance (Welford's algorithm) plus
/// min/max tracking. Mergeable (parallel reduction via Chan et al.).
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator into this one.
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation between closest ranks).
/// `p` in [0, 100]. Copies and sorts; for hot paths use Histogram instead.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Median convenience wrapper.
[[nodiscard]] double median(std::span<const double> values);

/// Arithmetic mean of a sample; 0 for empty input.
[[nodiscard]] double mean_of(std::span<const double> values) noexcept;

/// Pearson correlation coefficient; 0 if either side has zero variance.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace psched::util
