#pragma once
// A fixed-size thread pool used to parallelize independent experiment
// configurations (bench sweeps) and the selector's candidate-evaluation
// waves. Tasks are type-erased; `parallel_for` provides the common
// fork-join pattern with exception propagation, and `run_batch` the
// nested-safe variant the selector uses from inside pool workers.
//
// Shared state is annotated with the clang thread-safety capability macros
// (util/thread_annotations.hpp): under clang, -Wthread-safety verifies that
// queue_ and stop_ are only touched with mutex_ held.

#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace psched::util {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future carries its result or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool; blocks until all complete.
  /// The first exception thrown by any task is rethrown on the caller.
  /// Must NOT be called from inside a pool worker: with every worker blocked
  /// in a nested parallel_for, the sub-tasks would never run. Nested code
  /// uses run_batch instead.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Submit-and-collect helper for a batch of `n` tasks, order-preserving:
  /// `fn(i)` writes the result slot the caller indexed by `i`, so collected
  /// results keep submission order regardless of which thread ran which
  /// task. Unlike parallel_for, the calling thread helps drain the batch, so
  /// run_batch is safe to call from inside a pool worker (nested selector
  /// waves under an outer scenario sweep): the batch completes even when
  /// every other worker is busy, and the caller never waits on helper tasks
  /// the pool has not scheduled yet — stragglers find the index space
  /// exhausted and return without touching the (shared) batch state's work.
  /// The first exception thrown by any task is rethrown on the caller.
  void run_batch(std::size_t n, std::function<void(std::size_t)> fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ PSCHED_GUARDED_BY(mutex_);
  bool stop_ PSCHED_GUARDED_BY(mutex_) = false;
};

}  // namespace psched::util
