#include "obs/report.hpp"

#include <cstdint>
#include <map>
#include <sstream>
#include <utility>

#include "obs/atomic_file.hpp"
#include "obs/json.hpp"

namespace psched::obs {

namespace {

constexpr const char* kRunReportSchema = "psched-run-report/v1";
constexpr const char* kFailuresSchema = "psched-failures/v1";
constexpr const char* kPricingSchema = "psched-pricing/v1";
constexpr const char* kTenantsSchema = "psched-tenants/v1";
constexpr const char* kCheckpointSchema = "psched-checkpoint-report/v1";

void append_kv(std::string& out, const char* key, const std::string& value_json,
               bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += key;
  out += "\":";
  out += value_json;
}

std::string quoted(std::string_view text) {
  std::string out = "\"";
  out += json_escape(text);
  out += '"';
  return out;
}

std::string number_map_json(const std::map<std::string, double>& values) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : values)
    append_kv(out, name.c_str(), json_number(value), first);
  out += '}';
  return out;
}

std::string metrics_json(const metrics::RunMetrics& m,
                         const metrics::UtilityParams& utility) {
  std::string out = "{";
  bool first = true;
  append_kv(out, "jobs", json_number(static_cast<double>(m.jobs)), first);
  append_kv(out, "avg_bounded_slowdown", json_number(m.avg_bounded_slowdown), first);
  append_kv(out, "max_bounded_slowdown", json_number(m.max_bounded_slowdown), first);
  append_kv(out, "avg_wait", json_number(m.avg_wait), first);
  append_kv(out, "rj_proc_seconds", json_number(m.rj_proc_seconds), first);
  append_kv(out, "rv_charged_seconds", json_number(m.rv_charged_seconds), first);
  append_kv(out, "charged_hours", json_number(m.charged_hours()), first);
  append_kv(out, "utilization", json_number(m.utilization()), first);
  append_kv(out, "utility", json_number(m.utility(utility)), first);
  append_kv(out, "makespan", json_number(m.makespan), first);
  append_kv(out, "workflows", json_number(static_cast<double>(m.workflows)), first);
  out += '}';
  return out;
}

std::string failures_json(const RunReportInputs& inputs) {
  if (!inputs.failures_enabled) return "null";
  const metrics::FailureStats& f = inputs.metrics.failures;
  std::string out = "{";
  bool first = true;
  append_kv(out, "schema", quoted(kFailuresSchema), first);
  append_kv(out, "boot_failures",
            json_number(static_cast<double>(f.boot_failures)), first);
  append_kv(out, "vm_crashes", json_number(static_cast<double>(f.vm_crashes)), first);
  append_kv(out, "api_rejected_leases",
            json_number(static_cast<double>(f.api_rejected_leases)), first);
  append_kv(out, "api_rejected_releases",
            json_number(static_cast<double>(f.api_rejected_releases)), first);
  append_kv(out, "lease_retries",
            json_number(static_cast<double>(f.lease_retries)), first);
  append_kv(out, "job_kills", json_number(static_cast<double>(f.job_kills)), first);
  append_kv(out, "job_resubmissions",
            json_number(static_cast<double>(f.job_resubmissions)), first);
  append_kv(out, "jobs_killed_final",
            json_number(static_cast<double>(f.jobs_killed_final)), first);
  append_kv(out, "wasted_proc_seconds", json_number(f.wasted_proc_seconds), first);
  append_kv(out, "paid_wasted_seconds",
            json_number(f.failed_vm_charged_seconds), first);
  append_kv(out, "goodput_proc_seconds",
            json_number(inputs.metrics.goodput_proc_seconds()), first);
  out += '}';
  return out;
}

std::string pricing_json(const RunReportInputs& inputs) {
  if (!inputs.pricing_enabled) return "null";
  const metrics::PricingStats& p = inputs.metrics.pricing;
  std::string out = "{";
  bool first = true;
  append_kv(out, "schema", quoted(kPricingSchema), first);
  append_kv(out, "families", json_number(static_cast<double>(p.families)), first);
  append_kv(out, "on_demand_leases",
            json_number(static_cast<double>(p.on_demand_leases)), first);
  append_kv(out, "spot_leases", json_number(static_cast<double>(p.spot_leases)), first);
  append_kv(out, "reserved_leases",
            json_number(static_cast<double>(p.reserved_leases)), first);
  append_kv(out, "spot_warnings",
            json_number(static_cast<double>(p.spot_warnings)), first);
  append_kv(out, "spot_revocations",
            json_number(static_cast<double>(p.spot_revocations)), first);
  append_kv(out, "spend_on_demand_dollars",
            json_number(p.spend_on_demand_dollars), first);
  append_kv(out, "spend_spot_dollars", json_number(p.spend_spot_dollars), first);
  append_kv(out, "spend_reserved_dollars",
            json_number(p.spend_reserved_dollars), first);
  append_kv(out, "total_spend_dollars", json_number(p.total_spend_dollars()), first);
  append_kv(out, "spot_savings_dollars", json_number(p.spot_savings_dollars), first);
  append_kv(out, "revoked_charged_seconds",
            json_number(p.revoked_charged_seconds), first);
  out += '}';
  return out;
}

std::string tenants_json(const ReportTenants& t) {
  if (!t.present) return "null";
  std::string out = "{";
  bool first = true;
  append_kv(out, "schema", quoted(kTenantsSchema), first);
  append_kv(out, "count", json_number(static_cast<double>(t.tenants.size())), first);
  append_kv(out, "global_cap", json_number(static_cast<double>(t.global_cap)), first);
  append_kv(out, "arbitration_period_ticks",
            json_number(static_cast<double>(t.arbitration_period_ticks)), first);
  append_kv(out, "epochs", json_number(static_cast<double>(t.epochs)), first);
  append_kv(out, "arbitrations",
            json_number(static_cast<double>(t.arbitrations)), first);
  append_kv(out, "peak_leased", json_number(static_cast<double>(t.peak_leased)),
            first);
  std::string rows = "[";
  for (std::size_t i = 0; i < t.tenants.size(); ++i) {
    const ReportTenant& row = t.tenants[i];
    if (i != 0) rows += ',';
    std::string entry = "{";
    bool rfirst = true;
    append_kv(entry, "name", quoted(row.name), rfirst);
    append_kv(entry, "weight", json_number(row.weight), rfirst);
    append_kv(entry, "budget_vm_hours", json_number(row.budget_vm_hours), rfirst);
    append_kv(entry, "over_budget", row.over_budget ? "true" : "false", rfirst);
    append_kv(entry, "jobs", json_number(static_cast<double>(row.jobs)), rfirst);
    append_kv(entry, "killed", json_number(static_cast<double>(row.killed)), rfirst);
    append_kv(entry, "charged_hours", json_number(row.charged_hours), rfirst);
    append_kv(entry, "min_allocation",
              json_number(static_cast<double>(row.min_allocation)), rfirst);
    append_kv(entry, "mean_allocation", json_number(row.mean_allocation), rfirst);
    append_kv(entry, "max_allocation",
              json_number(static_cast<double>(row.max_allocation)), rfirst);
    entry += '}';
    rows += entry;
  }
  rows += ']';
  append_kv(out, "per_tenant", rows, first);
  out += '}';
  return out;
}

std::string portfolio_json(const ReportPortfolio& p) {
  if (!p.present) return "null";
  std::string out = "{";
  bool first = true;
  append_kv(out, "invocations", json_number(static_cast<double>(p.invocations)), first);
  append_kv(out, "total_selection_cost_ms", json_number(p.total_selection_cost_ms), first);
  append_kv(out, "mean_simulated_per_invocation",
            json_number(p.mean_simulated_per_invocation), first);
  std::string counts = "[";
  for (std::size_t i = 0; i < p.chosen_counts.size(); ++i) {
    if (i != 0) counts += ',';
    counts += json_number(static_cast<double>(p.chosen_counts[i]));
  }
  counts += ']';
  append_kv(out, "chosen_counts", counts, first);
  out += '}';
  return out;
}

/// Aggregate the per-round telemetry into a compact report section; the
/// full round list stays in memory for tests, the report carries totals and
/// means so long runs stay small.
std::string selection_json(const Recorder* recorder) {
  if (recorder == nullptr || recorder->rounds().empty()) return "null";
  const auto& rounds = recorder->rounds();
  double simulated = 0.0, charged = 0.0;
  double smart = 0.0, stale = 0.0, poor = 0.0;
  std::size_t churn = 0, memo_hits = 0;
  std::map<std::string, double> tie_paths;
  for (const SelectionRoundRecord& r : rounds) {
    simulated += static_cast<double>(r.simulated);
    charged += r.budget_charged;
    smart += static_cast<double>(r.smart_out);
    stale += static_cast<double>(r.stale_out);
    poor += static_cast<double>(r.poor_out);
    churn += r.smart_churn;
    memo_hits += r.memo_hits;
    tie_paths[r.tie_path] += 1.0;
  }
  const auto n = static_cast<double>(rounds.size());
  std::string out = "{";
  bool first = true;
  append_kv(out, "rounds", json_number(n), first);
  append_kv(out, "total_simulated", json_number(simulated), first);
  append_kv(out, "total_budget_charged", json_number(charged), first);
  append_kv(out, "total_memo_hits", json_number(static_cast<double>(memo_hits)), first);
  append_kv(out, "mean_smart", json_number(smart / n), first);
  append_kv(out, "mean_stale", json_number(stale / n), first);
  append_kv(out, "mean_poor", json_number(poor / n), first);
  append_kv(out, "total_smart_churn", json_number(static_cast<double>(churn)), first);
  append_kv(out, "tie_paths", number_map_json(tie_paths), first);
  out += '}';
  return out;
}

std::string checkpoint_json(const ReportCheckpoint& c) {
  if (!c.present) return "null";
  std::string out = "{";
  bool first = true;
  append_kv(out, "schema", quoted(kCheckpointSchema), first);
  append_kv(out, "every_epochs", json_number(static_cast<double>(c.every_epochs)),
            first);
  append_kv(out, "written", json_number(static_cast<double>(c.written)), first);
  append_kv(out, "restored", json_number(static_cast<double>(c.restored)), first);
  append_kv(out, "rejected", json_number(static_cast<double>(c.rejected)), first);
  append_kv(out, "resumed_epoch", json_number(static_cast<double>(c.resumed_epoch)),
            first);
  out += '}';
  return out;
}

std::string phases_json(const Recorder* recorder) {
  if (recorder == nullptr) return "{}";
  std::string out = "{";
  bool first = true;
  for (const auto& [name, stat] : recorder->phases()) {
    std::string entry = "{\"calls\":";
    entry += json_number(static_cast<double>(stat.calls));
    entry += ",\"total_us\":";
    entry += json_number(stat.total_us);
    entry += '}';
    append_kv(out, name.c_str(), entry, first);
  }
  out += '}';
  return out;
}

}  // namespace

std::string run_report_json(const RunReportInputs& inputs, const Recorder* recorder) {
  std::string out = "{";
  bool first = true;
  append_kv(out, "schema", quoted(kRunReportSchema), first);
  append_kv(out, "trace", quoted(inputs.trace_name), first);
  append_kv(out, "scheduler", quoted(inputs.scheduler_name), first);
  append_kv(out, "metrics", metrics_json(inputs.metrics, inputs.utility), first);

  std::string engine = "{";
  bool efirst = true;
  append_kv(engine, "ticks", json_number(static_cast<double>(inputs.ticks)), efirst);
  append_kv(engine, "events", json_number(static_cast<double>(inputs.events)), efirst);
  append_kv(engine, "total_leases",
            json_number(static_cast<double>(inputs.total_leases)), efirst);
  append_kv(engine, "invariant_checks",
            json_number(static_cast<double>(inputs.invariant_checks)), efirst);
  append_kv(engine, "invariant_violations",
            json_number(static_cast<double>(inputs.invariant_violations)), efirst);
  engine += '}';
  append_kv(out, "engine", engine, first);

  append_kv(out, "failures", failures_json(inputs), first);
  append_kv(out, "pricing", pricing_json(inputs), first);
  append_kv(out, "tenants", tenants_json(inputs.tenants), first);
  append_kv(out, "checkpoint", checkpoint_json(inputs.checkpoint), first);
  append_kv(out, "portfolio", portfolio_json(inputs.portfolio), first);
  append_kv(out, "selection", selection_json(recorder), first);
  append_kv(out, "phases", phases_json(recorder), first);
  append_kv(out, "counters",
            number_map_json(recorder != nullptr ? recorder->counters()
                                                : std::map<std::string, double>{}),
            first);
  append_kv(out, "gauges",
            number_map_json(recorder != nullptr ? recorder->gauges()
                                                : std::map<std::string, double>{}),
            first);
  append_kv(out, "obs_level",
            quoted(to_string(recorder != nullptr ? recorder->level() : ObsLevel::kOff)),
            first);
  out += "}\n";
  return out;
}

std::string chrome_trace_json(const Recorder& recorder) {
  const std::vector<TraceEvent> events = recorder.events_snapshot();
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i != 0) out += ',';
    out += "{\"name\":";
    out += quoted(e.name);
    out += ",\"ph\":\"";
    out += e.phase;
    out += "\",\"ts\":";
    out += json_number(static_cast<double>(e.ts_us));
    out += ",\"pid\":1,\"tid\":";
    out += json_number(static_cast<double>(e.tid));
    if (e.phase == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
    if (!e.args_json.empty()) {
      out += ",\"args\":";
      out += e.args_json;
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

namespace {

ValidationResult fail(std::string detail) { return {false, std::move(detail)}; }

const JsonValue* require(const JsonValue& object, const char* key,
                         JsonValue::Type type, ValidationResult& status) {
  const JsonValue* member = object.find(key);
  if (member == nullptr) {
    status = fail(std::string("missing key \"") + key + '"');
    return nullptr;
  }
  if (!member->is(type)) {
    status = fail(std::string("key \"") + key + "\" has wrong JSON type");
    return nullptr;
  }
  return member;
}

}  // namespace

ValidationResult validate_run_report(std::string_view json) {
  const JsonParseResult parsed = json_parse(json);
  if (!parsed.ok)
    return fail("report is not valid JSON: " + parsed.error + " at byte " +
                std::to_string(parsed.error_pos));
  const JsonValue& root = parsed.value;
  if (!root.is(JsonValue::Type::kObject)) return fail("report root is not an object");

  ValidationResult status;
  const JsonValue* schema = require(root, "schema", JsonValue::Type::kString, status);
  if (schema == nullptr) return status;
  if (schema->string != kRunReportSchema)
    return fail("unexpected schema tag \"" + schema->string + '"');

  if (require(root, "trace", JsonValue::Type::kString, status) == nullptr) return status;
  if (require(root, "scheduler", JsonValue::Type::kString, status) == nullptr)
    return status;

  const JsonValue* metrics = require(root, "metrics", JsonValue::Type::kObject, status);
  if (metrics == nullptr) return status;
  for (const char* key : {"jobs", "avg_bounded_slowdown", "rj_proc_seconds",
                          "rv_charged_seconds", "charged_hours", "utilization",
                          "utility", "makespan"}) {
    const JsonValue* field = metrics->find(key);
    if (field == nullptr) return fail(std::string("metrics missing \"") + key + '"');
    if (!field->is(JsonValue::Type::kNumber) && !field->is(JsonValue::Type::kNull))
      return fail(std::string("metrics.") + key + " is not a number");
  }

  const JsonValue* engine = require(root, "engine", JsonValue::Type::kObject, status);
  if (engine == nullptr) return status;
  for (const char* key : {"ticks", "events", "total_leases"}) {
    const JsonValue* field = engine->find(key);
    if (field == nullptr || !field->is(JsonValue::Type::kNumber))
      return fail(std::string("engine.") + key + " missing or not a number");
  }

  const JsonValue* failures = root.find("failures");
  if (failures == nullptr) return fail("missing key \"failures\"");
  if (failures->is(JsonValue::Type::kObject)) {
    const JsonValue* fschema = failures->find("schema");
    if (fschema == nullptr || !fschema->is(JsonValue::Type::kString))
      return fail("failures.schema missing or not a string");
    if (fschema->string != kFailuresSchema)
      return fail("unexpected failures schema tag \"" + fschema->string + '"');
    for (const char* key :
         {"boot_failures", "vm_crashes", "api_rejected_leases",
          "api_rejected_releases", "lease_retries", "job_kills",
          "job_resubmissions", "jobs_killed_final", "wasted_proc_seconds",
          "paid_wasted_seconds", "goodput_proc_seconds"}) {
      const JsonValue* field = failures->find(key);
      if (field == nullptr || !field->is(JsonValue::Type::kNumber))
        return fail(std::string("failures.") + key + " missing or not a number");
    }
  } else if (!failures->is(JsonValue::Type::kNull)) {
    return fail("failures is neither null nor an object");
  }

  const JsonValue* pricing = root.find("pricing");
  if (pricing == nullptr) return fail("missing key \"pricing\"");
  if (pricing->is(JsonValue::Type::kObject)) {
    const JsonValue* pschema = pricing->find("schema");
    if (pschema == nullptr || !pschema->is(JsonValue::Type::kString))
      return fail("pricing.schema missing or not a string");
    if (pschema->string != kPricingSchema)
      return fail("unexpected pricing schema tag \"" + pschema->string + '"');
    for (const char* key :
         {"families", "on_demand_leases", "spot_leases", "reserved_leases",
          "spot_warnings", "spot_revocations", "spend_on_demand_dollars",
          "spend_spot_dollars", "spend_reserved_dollars", "total_spend_dollars",
          "spot_savings_dollars", "revoked_charged_seconds"}) {
      const JsonValue* field = pricing->find(key);
      if (field == nullptr || !field->is(JsonValue::Type::kNumber))
        return fail(std::string("pricing.") + key + " missing or not a number");
    }
  } else if (!pricing->is(JsonValue::Type::kNull)) {
    return fail("pricing is neither null nor an object");
  }

  const JsonValue* tenants = root.find("tenants");
  if (tenants == nullptr) return fail("missing key \"tenants\"");
  if (tenants->is(JsonValue::Type::kObject)) {
    const JsonValue* tschema = tenants->find("schema");
    if (tschema == nullptr || !tschema->is(JsonValue::Type::kString))
      return fail("tenants.schema missing or not a string");
    if (tschema->string != kTenantsSchema)
      return fail("unexpected tenants schema tag \"" + tschema->string + '"');
    for (const char* key : {"count", "global_cap", "arbitration_period_ticks",
                            "epochs", "arbitrations", "peak_leased"}) {
      const JsonValue* field = tenants->find(key);
      if (field == nullptr || !field->is(JsonValue::Type::kNumber))
        return fail(std::string("tenants.") + key + " missing or not a number");
    }
    const JsonValue* rows = tenants->find("per_tenant");
    if (rows == nullptr || !rows->is(JsonValue::Type::kArray))
      return fail("tenants.per_tenant missing or not an array");
    const JsonValue* count = tenants->find("count");
    if (rows->array.size() != static_cast<std::size_t>(count->number))
      return fail("tenants.per_tenant length does not match tenants.count");
    for (std::size_t i = 0; i < rows->array.size(); ++i) {
      const JsonValue& row = rows->array[i];
      const std::string at = " (tenant " + std::to_string(i) + ")";
      if (!row.is(JsonValue::Type::kObject))
        return fail("per_tenant entry is not an object" + at);
      const JsonValue* name = row.find("name");
      if (name == nullptr || !name->is(JsonValue::Type::kString))
        return fail("per_tenant name missing or not a string" + at);
      const JsonValue* over = row.find("over_budget");
      if (over == nullptr || !over->is(JsonValue::Type::kBool))
        return fail("per_tenant over_budget missing or not a boolean" + at);
      for (const char* key :
           {"weight", "budget_vm_hours", "jobs", "killed", "charged_hours",
            "min_allocation", "mean_allocation", "max_allocation"}) {
        const JsonValue* field = row.find(key);
        if (field == nullptr || !field->is(JsonValue::Type::kNumber))
          return fail(std::string("per_tenant ") + key +
                      " missing or not a number" + at);
      }
    }
  } else if (!tenants->is(JsonValue::Type::kNull)) {
    return fail("tenants is neither null nor an object");
  }

  const JsonValue* checkpoint = root.find("checkpoint");
  if (checkpoint == nullptr) return fail("missing key \"checkpoint\"");
  if (checkpoint->is(JsonValue::Type::kObject)) {
    const JsonValue* cschema = checkpoint->find("schema");
    if (cschema == nullptr || !cschema->is(JsonValue::Type::kString))
      return fail("checkpoint.schema missing or not a string");
    if (cschema->string != kCheckpointSchema)
      return fail("unexpected checkpoint schema tag \"" + cschema->string + '"');
    for (const char* key :
         {"every_epochs", "written", "restored", "rejected", "resumed_epoch"}) {
      const JsonValue* field = checkpoint->find(key);
      if (field == nullptr || !field->is(JsonValue::Type::kNumber))
        return fail(std::string("checkpoint.") + key + " missing or not a number");
    }
  } else if (!checkpoint->is(JsonValue::Type::kNull)) {
    return fail("checkpoint is neither null nor an object");
  }

  const JsonValue* portfolio = root.find("portfolio");
  if (portfolio == nullptr) return fail("missing key \"portfolio\"");
  if (!portfolio->is(JsonValue::Type::kNull) &&
      !portfolio->is(JsonValue::Type::kObject))
    return fail("portfolio is neither null nor an object");

  const JsonValue* selection = root.find("selection");
  if (selection == nullptr) return fail("missing key \"selection\"");
  if (selection->is(JsonValue::Type::kObject)) {
    for (const char* key : {"rounds", "total_simulated", "total_budget_charged",
                            "total_memo_hits"}) {
      const JsonValue* field = selection->find(key);
      if (field == nullptr || !field->is(JsonValue::Type::kNumber))
        return fail(std::string("selection.") + key + " missing or not a number");
    }
  } else if (!selection->is(JsonValue::Type::kNull)) {
    return fail("selection is neither null nor an object");
  }

  if (require(root, "phases", JsonValue::Type::kObject, status) == nullptr)
    return status;
  const JsonValue* counters = require(root, "counters", JsonValue::Type::kObject, status);
  if (counters == nullptr) return status;
  for (const auto& [name, value] : counters->object)
    if (!value.is(JsonValue::Type::kNumber))
      return fail("counter \"" + name + "\" is not a number");

  if (require(root, "obs_level", JsonValue::Type::kString, status) == nullptr)
    return status;
  return {};
}

ValidationResult validate_chrome_trace(std::string_view json) {
  const JsonParseResult parsed = json_parse(json);
  if (!parsed.ok)
    return fail("trace is not valid JSON: " + parsed.error + " at byte " +
                std::to_string(parsed.error_pos));
  const JsonValue& root = parsed.value;
  if (!root.is(JsonValue::Type::kObject)) return fail("trace root is not an object");
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is(JsonValue::Type::kArray))
    return fail("traceEvents missing or not an array");

  // Per-lane monotonicity + LIFO B/E matching. Lanes are (pid, tid) pairs.
  std::map<std::pair<double, double>, double> last_ts;
  std::map<std::pair<double, double>, std::vector<std::string>> open;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = " (event " + std::to_string(i) + ")";
    if (!e.is(JsonValue::Type::kObject)) return fail("event is not an object" + at);
    const JsonValue* name = e.find("name");
    const JsonValue* ph = e.find("ph");
    const JsonValue* ts = e.find("ts");
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    if (name == nullptr || !name->is(JsonValue::Type::kString))
      return fail("event name missing or not a string" + at);
    if (ph == nullptr || !ph->is(JsonValue::Type::kString) || ph->string.size() != 1)
      return fail("event ph missing or malformed" + at);
    if (ts == nullptr || !ts->is(JsonValue::Type::kNumber))
      return fail("event ts missing or not a number" + at);
    if (pid == nullptr || !pid->is(JsonValue::Type::kNumber) || tid == nullptr ||
        !tid->is(JsonValue::Type::kNumber))
      return fail("event pid/tid missing or not numbers" + at);

    const char phase = ph->string[0];
    if (phase != 'B' && phase != 'E' && phase != 'i')
      return fail(std::string("unsupported phase '") + phase + '\'' + at);

    const std::pair<double, double> lane{pid->number, tid->number};
    const auto seen = last_ts.find(lane);
    if (seen != last_ts.end() && ts->number < seen->second)
      return fail("non-monotone ts on lane tid=" +
                  std::to_string(static_cast<std::int64_t>(tid->number)) + at);
    last_ts[lane] = ts->number;

    if (phase == 'B') {
      open[lane].push_back(name->string);
    } else if (phase == 'E') {
      auto& stack = open[lane];
      if (stack.empty()) return fail("'E' without matching 'B'" + at);
      if (stack.back() != name->string)
        return fail("'E' name \"" + name->string + "\" does not match open 'B' \"" +
                    stack.back() + '"' + at);
      stack.pop_back();
    }
  }
  for (const auto& [lane, stack] : open)
    if (!stack.empty())
      return fail("unclosed 'B' \"" + stack.back() + "\" on lane tid=" +
                  std::to_string(static_cast<std::int64_t>(lane.second)));
  return {};
}

ValidationResult validate_bench_report(std::string_view json) {
  const JsonParseResult parsed = json_parse(json);
  if (!parsed.ok)
    return fail("bench report is not valid JSON: " + parsed.error + " at byte " +
                std::to_string(parsed.error_pos));
  const JsonValue& root = parsed.value;
  if (!root.is(JsonValue::Type::kObject))
    return fail("bench report root is not an object");

  ValidationResult status;
  const JsonValue* schema = require(root, "schema", JsonValue::Type::kString, status);
  if (schema == nullptr) return status;
  if (schema->string != "psched-bench-report/v1")
    return fail("unexpected schema tag \"" + schema->string + '"');
  if (require(root, "title", JsonValue::Type::kString, status) == nullptr) return status;

  const JsonValue* headers = require(root, "headers", JsonValue::Type::kArray, status);
  if (headers == nullptr) return status;
  for (const JsonValue& h : headers->array)
    if (!h.is(JsonValue::Type::kString)) return fail("header is not a string");

  // Optional regression-gate annotation (see obs/bench_gate.hpp): when
  // present it must be one known kind name per column.
  if (const JsonValue* gate = root.find("gate"); gate != nullptr) {
    if (!gate->is(JsonValue::Type::kArray))
      return fail("\"gate\" is not an array");
    if (gate->array.size() != headers->array.size())
      return fail("\"gate\" length does not match header count");
    for (const JsonValue& kind : gate->array) {
      if (!kind.is(JsonValue::Type::kString) ||
          (kind.string != "exact" && kind.string != "lower-better" &&
           kind.string != "higher-better" && kind.string != "informational"))
        return fail("\"gate\" entry is not a known column kind");
    }
  }

  const JsonValue* rows = require(root, "rows", JsonValue::Type::kArray, status);
  if (rows == nullptr) return status;
  for (std::size_t i = 0; i < rows->array.size(); ++i) {
    const JsonValue& row = rows->array[i];
    const std::string at = " (row " + std::to_string(i) + ")";
    if (!row.is(JsonValue::Type::kArray)) return fail("row is not an array" + at);
    if (row.array.size() != headers->array.size())
      return fail("row width does not match header count" + at);
    for (const JsonValue& cell : row.array)
      if (!cell.is(JsonValue::Type::kNumber) && !cell.is(JsonValue::Type::kString))
        return fail("cell is neither number nor string" + at);
  }
  return {};
}

ValidationResult validate_sarif(std::string_view json) {
  const JsonParseResult parsed = json_parse(json);
  if (!parsed.ok)
    return fail("SARIF is not valid JSON: " + parsed.error + " at byte " +
                std::to_string(parsed.error_pos));
  const JsonValue& root = parsed.value;
  if (!root.is(JsonValue::Type::kObject))
    return fail("SARIF root is not an object");

  ValidationResult status;
  const JsonValue* version = require(root, "version", JsonValue::Type::kString, status);
  if (version == nullptr) return status;
  if (version->string != "2.1.0")
    return fail("unexpected SARIF version \"" + version->string + '"');

  const JsonValue* runs = require(root, "runs", JsonValue::Type::kArray, status);
  if (runs == nullptr) return status;
  if (runs->array.empty()) return fail("\"runs\" is empty");

  for (std::size_t r = 0; r < runs->array.size(); ++r) {
    const JsonValue& run = runs->array[r];
    const std::string at_run = " (run " + std::to_string(r) + ")";
    if (!run.is(JsonValue::Type::kObject)) return fail("run is not an object" + at_run);
    const JsonValue* tool = run.find("tool");
    if (tool == nullptr || !tool->is(JsonValue::Type::kObject))
      return fail("missing \"tool\" object" + at_run);
    const JsonValue* driver = tool->find("driver");
    if (driver == nullptr || !driver->is(JsonValue::Type::kObject))
      return fail("missing \"tool.driver\" object" + at_run);
    const JsonValue* name = driver->find("name");
    if (name == nullptr || !name->is(JsonValue::Type::kString) || name->string.empty())
      return fail("\"tool.driver.name\" is not a non-empty string" + at_run);
    if (const JsonValue* rules = driver->find("rules"); rules != nullptr) {
      if (!rules->is(JsonValue::Type::kArray))
        return fail("\"tool.driver.rules\" is not an array" + at_run);
      for (const JsonValue& rule : rules->array) {
        const JsonValue* id = rule.find("id");
        if (id == nullptr || !id->is(JsonValue::Type::kString) || id->string.empty())
          return fail("rule without a non-empty \"id\"" + at_run);
      }
    }

    const JsonValue* results = run.find("results");
    if (results == nullptr || !results->is(JsonValue::Type::kArray))
      return fail("missing \"results\" array" + at_run);
    for (std::size_t i = 0; i < results->array.size(); ++i) {
      const JsonValue& result = results->array[i];
      const std::string at = " (run " + std::to_string(r) + ", result " +
                             std::to_string(i) + ")";
      if (!result.is(JsonValue::Type::kObject))
        return fail("result is not an object" + at);
      const JsonValue* rule_id = result.find("ruleId");
      if (rule_id == nullptr || !rule_id->is(JsonValue::Type::kString) ||
          rule_id->string.empty())
        return fail("result without a non-empty \"ruleId\"" + at);
      const JsonValue* message = result.find("message");
      if (message == nullptr || !message->is(JsonValue::Type::kObject))
        return fail("result without a \"message\" object" + at);
      const JsonValue* text = message->find("text");
      if (text == nullptr || !text->is(JsonValue::Type::kString))
        return fail("result \"message.text\" is not a string" + at);
      const JsonValue* locations = result.find("locations");
      if (locations == nullptr || !locations->is(JsonValue::Type::kArray) ||
          locations->array.empty())
        return fail("result without a non-empty \"locations\" array" + at);
      for (const JsonValue& location : locations->array) {
        const JsonValue* physical = location.find("physicalLocation");
        if (physical == nullptr || !physical->is(JsonValue::Type::kObject))
          return fail("location without \"physicalLocation\"" + at);
        const JsonValue* artifact = physical->find("artifactLocation");
        if (artifact == nullptr || !artifact->is(JsonValue::Type::kObject))
          return fail("location without \"artifactLocation\"" + at);
        const JsonValue* uri = artifact->find("uri");
        if (uri == nullptr || !uri->is(JsonValue::Type::kString) || uri->string.empty())
          return fail("\"artifactLocation.uri\" is not a non-empty string" + at);
        const JsonValue* region = physical->find("region");
        if (region == nullptr || !region->is(JsonValue::Type::kObject))
          return fail("location without \"region\"" + at);
        const JsonValue* start_line = region->find("startLine");
        if (start_line == nullptr || !start_line->is(JsonValue::Type::kNumber) ||
            start_line->number < 1.0)
          return fail("\"region.startLine\" is not a number >= 1" + at);
      }
    }
  }
  return {};
}

bool write_text_file(const std::string& path, std::string_view content) {
  return write_file_atomic(path, content);
}

}  // namespace psched::obs
