#include "obs/obs.hpp"

#include <chrono>

namespace psched::obs {

std::string to_string(ObsLevel level) {
  switch (level) {
    case ObsLevel::kOff: return "off";
    case ObsLevel::kCounters: return "counters";
    case ObsLevel::kTrace: return "trace";
  }
  return "off";
}

ObsLevel obs_level_from_string(const std::string& name, bool& ok) {
  ok = true;
  if (name == "off") return ObsLevel::kOff;
  if (name == "counters") return ObsLevel::kCounters;
  if (name == "trace") return ObsLevel::kTrace;
  ok = false;
  return ObsLevel::kOff;
}

namespace {

std::int64_t steady_ns() {
  // The observability layer's single wall-clock site (psched-lint D1
  // allowlist, DESIGN.md §9): timestamps here are reporting-only and never
  // feed a scheduling decision.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
}

}  // namespace

Recorder::Recorder(ObsConfig config) : config_(config) {
  if (counters_on()) epoch_ns_ = steady_ns();
}

std::int64_t Recorder::now_us() const {
  if (!counters_on()) return 0;
  return (steady_ns() - epoch_ns_) / 1000;
}

void Recorder::counter_add(const char* name, double delta) {
  if (!counters_on()) return;
  counters_[name] += delta;
}

void Recorder::gauge_set(const char* name, double value) {
  if (!counters_on()) return;
  gauges_[name] = value;
}

void Recorder::phase_add(const char* name, double us) {
  if (!counters_on()) return;
  PhaseStat& stat = phases_[name];
  ++stat.calls;
  stat.total_us += us;
}

void Recorder::append_event(TraceEvent event) {
  if (!tracing_on()) return;
  util::MutexLock lock(events_mu_);
  events_.push_back(std::move(event));
}

void Recorder::instant(const char* name, std::uint32_t tid, std::string args_json) {
  if (!tracing_on()) return;
  append_event(TraceEvent{name, 'i', now_us(), tid, std::move(args_json)});
}

void Recorder::merge_events(std::vector<TraceEvent> events) {
  if (!tracing_on() || events.empty()) return;
  util::MutexLock lock(events_mu_);
  events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
}

void Recorder::record_round(const SelectionRoundRecord& record) {
  if (!counters_on()) return;
  rounds_.push_back(record);
}

std::vector<TraceEvent> Recorder::events_snapshot() const {
  util::MutexLock lock(events_mu_);
  return events_;
}

Recorder::Scope::Scope(Recorder* recorder, const char* name, std::uint32_t tid)
    : rec_(recorder != nullptr && recorder->counters_on() ? recorder : nullptr),
      name_(name),
      tid_(tid) {
  if (rec_ == nullptr) return;
  start_us_ = rec_->now_us();
  if (rec_->tracing_on())
    rec_->append_event(TraceEvent{name_, 'B', start_us_, tid_, {}});
}

Recorder::Scope::~Scope() {
  if (rec_ == nullptr) return;
  const std::int64_t end_us = rec_->now_us();
  rec_->phase_add(name_, static_cast<double>(end_us - start_us_));
  if (rec_->tracing_on())
    rec_->append_event(TraceEvent{name_, 'E', end_us, tid_, {}});
}

}  // namespace psched::obs
