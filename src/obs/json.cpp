#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace psched::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  // %.17g round-trips doubles; integral values print without an exponent
  // for readability of the common counter case.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", value);
  }
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object)
    if (name == key) return &value;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    if (!parse_value(result.value)) {
      result.error = error_;
      result.error_pos = pos_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing characters after document";
      result.error_pos = pos_;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  bool fail(const char* message) {
    error_ = message;
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        if (depth_ >= kJsonMaxDepth) return fail("nesting depth exceeds limit");
        return parse_object(out);
      case '[':
        if (depth_ >= kJsonMaxDepth) return fail("nesting depth exceeds limit");
        return parse_array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // Validation-grade decoding: BMP code points as UTF-8; surrogate
          // pairs are accepted but replaced (the obs writers never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (pos_ == start) return fail("invalid value");
    out.type = JsonValue::Type::kNumber;
    char* end = nullptr;
    const std::string token(text_.substr(start, pos_ - start));
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;  ///< open containers; bounded by kJsonMaxDepth
  std::string error_;
};

}  // namespace

JsonParseResult json_parse(std::string_view text) { return Parser(text).run(); }

}  // namespace psched::obs
