#pragma once
// Bench regression gate (DESIGN.md §11): compare a freshly produced
// "psched-bench-report/v1" document against a committed baseline and fail
// on regressions.
//
// A gated report carries an optional "gate" array parallel to "headers":
// one ColumnKind per column saying how that column is compared. Columns of
// deterministic outputs (candidate counts, memo hits, thread widths) gate
// exactly — any drift is a correctness bug, not noise. Timing/throughput
// columns gate within a multiplicative tolerance band: the gate is a
// guardrail against algorithmic blowups (an accidental O(n^2), a lost
// fast path), not a precision benchmark — machine noise must never fail
// it, so the default band is deliberately wide. Reports without a "gate"
// array compare every column exactly (the caller opted into gating by
// invoking the gate at all).
//
// Improvements always pass: a candidate that got faster than its baseline
// is a reason to refresh the baseline (tools/psched_bench_gate --update),
// never a failure.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace psched::obs {

/// How one column of a gated bench table compares against its baseline.
enum class ColumnKind {
  kExact,          ///< bit-for-bit: deterministic outputs, labels, counts
  kLowerBetter,    ///< latency-like: fail if candidate > baseline * tolerance
  kHigherBetter,   ///< throughput-like: fail if candidate < baseline / tolerance
  kInformational,  ///< never gated (context columns, machine-dependent extras)
};

/// Stable wire names for the report's "gate" array.
[[nodiscard]] const char* to_string(ColumnKind kind) noexcept;
/// Parse a wire name; returns false (and leaves `out` untouched) on an
/// unknown name.
[[nodiscard]] bool column_kind_from(std::string_view name, ColumnKind& out) noexcept;

struct BenchGateConfig {
  /// Multiplicative slack for kLowerBetter/kHigherBetter columns: a
  /// candidate fails only when it is worse than baseline by more than this
  /// factor (e.g. 3.0 = "three times slower"). Wide by design — the gate
  /// catches algorithmic regressions, not scheduler jitter. Must be >= 1.
  double timing_tolerance = 3.0;
};

/// One gate comparison outcome, machine-checkable and human-readable.
struct GateResult {
  std::vector<std::string> failures;  ///< empty = pass
  std::size_t cells_checked = 0;      ///< gated cells compared (excl. informational)

  [[nodiscard]] bool pass() const noexcept { return failures.empty(); }
};

/// Gate `candidate_json` against `baseline_json` (both full
/// "psched-bench-report/v1" documents). Structural mismatches — bad JSON,
/// schema drift, different headers, different row counts, diverging "gate"
/// arrays — are failures: a gate that cannot line the tables up must not
/// silently pass. The baseline's "gate" array (falling back to the
/// candidate's, then to all-exact) decides each column's comparison.
[[nodiscard]] GateResult gate_bench_reports(std::string_view baseline_json,
                                            std::string_view candidate_json,
                                            const BenchGateConfig& config);

}  // namespace psched::obs
