#pragma once
// Structured observability for experiment runs (DESIGN.md §9): named
// counters/gauges, scoped phase timers, a Chrome-trace event sink, and
// per-selection-round telemetry records.
//
// Design constraints, in order of priority:
//
//  1. Zero perturbation when off. Every instrumentation site holds a
//     `Recorder*` that is null (or a Recorder at ObsLevel::kOff) in
//     unobserved runs, so the disabled cost is one predictable branch and
//     the observed simulation output is bit-identical to an uninstrumented
//     build. Observability never feeds back into scheduling decisions: no
//     RNG draw, queue order, or budget charge depends on recorder state.
//  2. Single clock site. All wall-clock reads live in obs.cpp
//     (Recorder::now_us), which is on psched-lint's D1 allowlist; the rest
//     of the tree stays clock-free so rule D1 keeps meaning something.
//  3. Deterministic merging under eval_threads > 1. Wave workers write
//     TraceEvents into per-slot buffers owned by the coordinating thread
//     and merged in wave order after the batch barrier; the shared sink is
//     still mutex-guarded (annotated like util/thread_pool) so recorders
//     shared across scenario sweeps stay correct.
//
// One Recorder instance observes one run. Counters, gauges, phase stats,
// and round records are confined to the run's coordinating thread; only the
// trace-event sink is thread-safe.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace psched::obs {

/// How much a run records. Each level includes the previous one.
enum class ObsLevel {
  kOff,       ///< nothing: null-branch cost, no clock reads
  kCounters,  ///< counters, gauges, phase timers, selection-round records
  kTrace,     ///< + Chrome-trace events (engine ticks, selector rounds,
              ///<   candidate simulations, provider lease/release)
};

struct ObsConfig {
  ObsLevel level = ObsLevel::kOff;
};

[[nodiscard]] std::string to_string(ObsLevel level);
/// Parse "off" / "counters" / "trace"; `ok` reports success.
[[nodiscard]] ObsLevel obs_level_from_string(const std::string& name, bool& ok);

/// One Chrome-trace event (the JSON serialization lives in obs/report.hpp).
/// `phase` uses the Chrome trace-format codes: 'B' begin, 'E' end,
/// 'i' instant. Timestamps are microseconds since the Recorder's epoch;
/// `tid` is a logical lane (0 = the run's coordinating thread, 1 + k = wave
/// slot k), not an OS thread id — slots are deterministic, OS ids are not.
struct TraceEvent {
  const char* name = "";      ///< static string (instrumentation-site literal)
  char phase = 'B';
  std::int64_t ts_us = 0;
  std::uint32_t tid = 0;
  std::string args_json;      ///< pre-serialized JSON object, or empty
};

/// Accumulated time of one named phase (scoped-timer aggregate).
struct PhaseStat {
  std::uint64_t calls = 0;
  double total_us = 0.0;
};

/// Telemetry for one portfolio selection round (Algorithm 1 invocation).
struct SelectionRoundRecord {
  double sim_now = 0.0;           ///< simulated clock at selection time
  std::size_t simulated = 0;      ///< |Q| — candidate policies evaluated
  double budget_delta = 0.0;      ///< configured Delta (ms or count; 0 = unbounded)
  double budget_charged = 0.0;    ///< budget actually consumed
  std::size_t smart_in = 0, stale_in = 0, poor_in = 0;    ///< set sizes before
  std::size_t smart_out = 0, stale_out = 0, poor_out = 0; ///< set sizes after
  std::size_t smart_churn = 0;    ///< |new Smart \ old Smart|
  std::size_t quarantined = 0;    ///< candidates that threw / blew budget
  std::size_t memo_hits = 0;      ///< candidates answered from the memo cache
  std::size_t chosen = 0;         ///< winning portfolio index
  double chosen_utility = 0.0;
  std::size_t tie_set = 0;        ///< scores tied with the best
  const char* tie_path = "";      ///< "unique", "random", "sticky",
                                  ///< "first-index", "degraded"
};

class Recorder {
 public:
  explicit Recorder(ObsConfig config);
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  [[nodiscard]] ObsLevel level() const noexcept { return config_.level; }
  [[nodiscard]] bool counters_on() const noexcept {
    return config_.level != ObsLevel::kOff;
  }
  [[nodiscard]] bool tracing_on() const noexcept {
    return config_.level == ObsLevel::kTrace;
  }

  /// Microseconds since this recorder's construction (monotonic). The only
  /// wall-clock read in the observability layer; no-ops (returns 0) when the
  /// recorder is off so a disabled recorder never touches a clock.
  [[nodiscard]] std::int64_t now_us() const;

  // --- counters & gauges (coordinating thread only) -------------------------
  void counter_add(const char* name, double delta);
  void gauge_set(const char* name, double value);

  // --- phase timers ----------------------------------------------------------
  /// RAII scoped timer: accumulates into the named phase, and at kTrace also
  /// emits a B/E event pair on lane `tid`. Safe to construct with a null or
  /// disabled recorder (fully inert, no clock read).
  class Scope {
   public:
    Scope(Recorder* recorder, const char* name, std::uint32_t tid);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Recorder* rec_;  ///< null when disabled
    const char* name_;
    std::uint32_t tid_;
    std::int64_t start_us_ = 0;
  };

  void phase_add(const char* name, double us);

  // --- trace events ----------------------------------------------------------
  /// Append one event to the shared sink (thread-safe).
  void append_event(TraceEvent event);
  /// Append an instant event ('i') stamped now on lane `tid`.
  void instant(const char* name, std::uint32_t tid, std::string args_json = {});
  /// Bulk-append a per-thread buffer (thread-safe). Callers are responsible
  /// for deterministic merge ORDER (merge per-slot buffers in slot order
  /// from the coordinating thread after the wave barrier).
  void merge_events(std::vector<TraceEvent> events);

  // --- selection-round telemetry (coordinating thread only) ------------------
  void record_round(const SelectionRoundRecord& record);

  // --- introspection (coordinating thread; used by report.cpp and tests) -----
  [[nodiscard]] const std::map<std::string, double>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, PhaseStat>& phases() const noexcept {
    return phases_;
  }
  [[nodiscard]] const std::vector<SelectionRoundRecord>& rounds() const noexcept {
    return rounds_;
  }
  /// Snapshot of the trace-event sink (locked copy).
  [[nodiscard]] std::vector<TraceEvent> events_snapshot() const;

 private:
  ObsConfig config_;
  /// Set eagerly in the constructor when the recorder is enabled (an off
  /// recorder never reads the clock at all, not even at construction), so
  /// wave workers can read it without synchronization: the constructor
  /// happens-before every now_us() call and the value never changes after.
  std::int64_t epoch_ns_ = 0;

  // Aggregates are written by the run's coordinating thread only (the same
  // thread that drives ClusterSimulation::run / select()); wave workers
  // never touch them. Enforced by the obs on/off determinism test.
  std::map<std::string, double> counters_ PSCHED_CONFINED_TO("run coordinating thread");
  std::map<std::string, double> gauges_ PSCHED_CONFINED_TO("run coordinating thread");
  std::map<std::string, PhaseStat> phases_ PSCHED_CONFINED_TO("run coordinating thread");
  std::vector<SelectionRoundRecord> rounds_ PSCHED_CONFINED_TO("run coordinating thread");

  mutable util::Mutex events_mu_;
  std::vector<TraceEvent> events_ PSCHED_GUARDED_BY(events_mu_);
};

}  // namespace psched::obs
