#include "obs/atomic_file.hpp"

#include <cstdio>
#include <string>

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace psched::obs {

namespace {

/// fsync the stdio stream's descriptor (best-effort on platforms without
/// one). A failed flush is fatal; a failed fsync is too — the caller must
/// not rename bytes the kernel has not accepted.
bool flush_and_sync(std::FILE* file) {
  if (std::fflush(file) != 0) return false;
#if defined(_WIN32)
  return _commit(_fileno(file)) == 0;
#else
  return ::fsync(::fileno(file)) == 0;
#endif
}

bool write_all(std::FILE* file, std::string_view content) {
  return content.empty() ||
         std::fwrite(content.data(), 1, content.size(), file) == content.size();
}

/// Write `content` straight to `path` (non-atomic; fault paths only).
bool write_plain(const std::string& path, std::string_view content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool ok = write_all(file, content);
  std::fclose(file);
  return ok;
}

}  // namespace

bool write_file_atomic(const std::string& path, std::string_view content,
                       AtomicWriteFault fault) {
  std::string payload;
  if (fault == AtomicWriteFault::kTornDestination) {
    // What a crash mid-write does without this helper: the destination
    // itself holds a truncated prefix.
    return write_plain(path, content.substr(0, content.size() / 2));
  }
  if (fault == AtomicWriteFault::kBitFlip) {
    payload.assign(content);
    if (!payload.empty()) payload[payload.size() / 2] ^= 0x10;
    content = payload;
  }

  const std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) return false;
  if (fault == AtomicWriteFault::kCrashBeforeRename) {
    // Crash simulation: a prefix reaches the temp file, the rename never
    // happens, and the destination keeps its previous content.
    (void)write_all(file, content.substr(0, content.size() / 2));
    std::fclose(file);
    return false;
  }
  bool ok = write_all(file, content) && flush_and_sync(file);
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) {
    std::remove(temp.c_str());
    return false;
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

}  // namespace psched::obs
