#pragma once
// Minimal JSON support for the observability layer: string escaping and
// number formatting for the writers in obs/report.cpp, plus a small strict
// recursive-descent parser used to validate emitted artifacts (run reports,
// Chrome traces) in tests and in tools/psched_report_check. Deliberately
// tiny: no external dependency, no streaming, documents only what the obs
// schemas need.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace psched::obs {

/// Escape `text` for inclusion inside a JSON string literal (no quotes
/// added): ", \, control characters.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Format a double as a JSON number. JSON has no inf/nan; non-finite values
/// serialize as `null` so emitted documents always parse.
[[nodiscard]] std::string json_number(double value);

/// Parsed JSON value (small DOM). Objects keep insertion order.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] bool is(Type t) const noexcept { return type == t; }
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;       ///< populated when !ok
  std::size_t error_pos = 0;
};

/// Maximum container nesting depth json_parse accepts. Deeper documents are
/// rejected with a parse error ("nesting depth exceeds limit") instead of
/// recursing without bound — the parser is recursive-descent, and a
/// hostile/corrupt artifact like "[[[[..." must not overflow the stack.
/// Generous headroom: real obs documents nest 4-5 levels deep.
inline constexpr std::size_t kJsonMaxDepth = 64;

/// Strict parse of a complete JSON document (trailing garbage is an error).
[[nodiscard]] JsonParseResult json_parse(std::string_view text);

}  // namespace psched::obs
