#pragma once
// Crash-safe file emission (DESIGN.md §14): write-to-temp, fsync, rename.
//
// Every durable artifact the toolchain emits — run reports, Chrome traces,
// SARIF, bench JSON, checkpoints — goes through write_file_atomic so a
// crash (or SIGKILL from the chaos harness) at any instant leaves either
// the complete previous file or the complete new file, never a torn one.
// POSIX rename(2) within one directory is atomic; the fsync before it
// makes sure the renamed bytes are the new content, not a cached prefix.
//
// Fault injection (validate/fault.hpp idiom): tests simulate a crash
// mid-write via AtomicWriteFault to prove the destination survives intact,
// and the checkpoint runner injects torn-write/bit-flip faults to prove
// the checksum catches them.

#include <string>
#include <string_view>

namespace psched::obs {

/// Deliberate write-path mutations for self-tests. kNone (always, outside
/// tests) is correct behavior.
enum class AtomicWriteFault {
  kNone,
  /// Crash simulation: write only a prefix of the content to the temp file
  /// and stop before the rename. The destination is left untouched.
  kCrashBeforeRename,
  /// Torn destination: bypass the temp+rename discipline and write a
  /// truncated prefix straight to the destination (what a crash mid-write
  /// would do WITHOUT this helper). Exercises torn-artifact detection.
  kTornDestination,
  /// Flip one bit of the content before the (otherwise clean) atomic
  /// write. Exercises checksum verification.
  kBitFlip,
};

/// Atomically replace `path` with `content`: write `path` + ".tmp", flush
/// and fsync it, then rename over `path`. Returns false on any I/O failure
/// (the destination keeps its previous content). `fault` injects a
/// deliberate failure mode for self-tests; kNone is the production path.
bool write_file_atomic(const std::string& path, std::string_view content,
                       AtomicWriteFault fault = AtomicWriteFault::kNone);

}  // namespace psched::obs
