#pragma once
// End-of-run observability artifacts (DESIGN.md §9):
//
//  * run_report_json  — the machine-readable "psched-run-report/v1" document
//    (metrics, engine totals, selection-round aggregates, phase wall time,
//    counter dump) written by the experiment runner, the bench harness, and
//    `psched_cli run --report-out`;
//  * chrome_trace_json — the Chrome trace-event document ("traceEvents")
//    loadable in chrome://tracing / Perfetto, built from a Recorder's event
//    sink;
//  * validate_run_report / validate_chrome_trace — schema validators shared
//    by the unit tests and tools/psched_report_check, so the schema a test
//    pins is the same one the CLI tool enforces.
//
// The report inputs are plain values (metrics + engine totals) rather than
// engine types: obs sits below engine in the include graph, so engine code
// can embed a Recorder without a cycle.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/collector.hpp"
#include "obs/obs.hpp"

namespace psched::obs {

/// Portfolio-run extras mirrored into the report (absent for single-policy
/// runs: `present == false` serializes the "portfolio" key as null).
struct ReportPortfolio {
  bool present = false;
  std::size_t invocations = 0;
  double total_selection_cost_ms = 0.0;
  double mean_simulated_per_invocation = 0.0;
  std::vector<std::size_t> chosen_counts;  ///< per portfolio policy index
};

/// One tenant's row in the report's "tenants" section.
struct ReportTenant {
  std::string name;
  double weight = 1.0;
  double budget_vm_hours = 0.0;  ///< 0 = unlimited
  bool over_budget = false;
  std::size_t jobs = 0;    ///< finished
  std::size_t killed = 0;  ///< killed for good (resubmission budget spent)
  double charged_hours = 0.0;
  std::size_t min_allocation = 0;  ///< arbiter allowance, across arbitrations
  double mean_allocation = 0.0;
  std::size_t max_allocation = 0;
};

/// Multi-tenant extras mirrored into the report (absent for single-tenant
/// runs: `present == false` serializes the "tenants" key as null).
struct ReportTenants {
  bool present = false;
  std::size_t global_cap = 0;  ///< shared provider capacity
  std::size_t arbitration_period_ticks = 0;
  std::uint64_t epochs = 0;
  std::uint64_t arbitrations = 0;
  std::size_t peak_leased = 0;  ///< max summed live fleets at arbitration
  std::vector<ReportTenant> tenants;
};

/// Checkpoint supervision extras mirrored into the report (absent for runs
/// without checkpointing: `present == false` serializes the "checkpoint" key
/// as null). Only the CLI supervisor fills this in — reports built straight
/// from engine results keep it null so a resumed run's report stays
/// byte-identical to an uninterrupted one.
struct ReportCheckpoint {
  bool present = false;
  std::size_t every_epochs = 0;  ///< checkpoint cadence (epochs)
  std::size_t written = 0;       ///< checkpoints written this process
  std::size_t restored = 0;      ///< successful restores (digest verified)
  std::size_t rejected = 0;      ///< corrupt/stale checkpoints skipped
  std::uint64_t resumed_epoch = 0;  ///< epoch resumed from (0 = fresh start)
};

/// Everything a run report needs beyond what the Recorder holds.
struct RunReportInputs {
  std::string trace_name;
  std::string scheduler_name;
  metrics::RunMetrics metrics;
  metrics::UtilityParams utility;  ///< parameters behind metrics.utility()
  std::uint64_t ticks = 0;
  std::uint64_t events = 0;
  std::size_t total_leases = 0;
  std::uint64_t invariant_checks = 0;
  std::size_t invariant_violations = 0;
  ReportPortfolio portfolio;
  /// True when the run had a failure model attached (EngineConfig::failure
  /// enabled). The report's "failures" section serializes as null when
  /// false, and as a schema-versioned ("psched-failures/v1") object built
  /// from metrics.failures when true — even if every count happens to be 0.
  bool failures_enabled = false;
  /// True when the run had a pricing model attached (EngineConfig::pricing
  /// enabled). The report's "pricing" section serializes as null when false,
  /// and as a schema-versioned ("psched-pricing/v1") object built from
  /// metrics.pricing when true.
  bool pricing_enabled = false;
  /// Multi-tenant section ("psched-tenants/v1"); `tenants.present == false`
  /// (the default, i.e. single-tenant mode) serializes the key as null.
  ReportTenants tenants;
  /// Checkpoint section ("psched-checkpoint-report/v1"); null unless the CLI
  /// supervisor ran with --checkpoint-every.
  ReportCheckpoint checkpoint;
};

/// Serialize the "psched-run-report/v1" document. `recorder` may be null or
/// disabled: the report then carries metrics/engine sections only, with
/// empty phases/counters and `"obs_level": "off"`.
[[nodiscard]] std::string run_report_json(const RunReportInputs& inputs,
                                          const Recorder* recorder);

/// Serialize the Recorder's event sink as a Chrome trace-event document:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`. Events keep sink
/// order (deterministic: coordinating-thread order with per-wave buffers
/// merged in slot order).
[[nodiscard]] std::string chrome_trace_json(const Recorder& recorder);

struct ValidationResult {
  bool ok = true;
  std::string detail;  ///< first failure, empty when ok
};

/// Validate a run-report document: parses, carries the v1 schema tag, and
/// has the required metrics/engine/phases/counters members with the right
/// JSON types.
[[nodiscard]] ValidationResult validate_run_report(std::string_view json);

/// Validate a Chrome trace document: parses, `traceEvents` is an array of
/// well-formed events, per-lane (pid, tid) timestamps are monotone
/// non-decreasing, and every 'B' has a matching 'E' (LIFO per lane, same
/// name).
[[nodiscard]] ValidationResult validate_chrome_trace(std::string_view json);

/// Validate a "psched-bench-report/v1" document (bench `--report` output):
/// parses, carries the v1 schema tag, and every row is rectangular with
/// number-or-string cells matching the header count.
[[nodiscard]] ValidationResult validate_bench_report(std::string_view json);

/// Validate a SARIF v2.1.0 document (psched-lint `--sarif` output, or any
/// tool's): parses within the obs/json depth bound, carries version
/// "2.1.0", has a non-empty `runs` array where each run names its tool
/// driver, and every result has a non-empty ruleId, a message.text string,
/// and locations with an artifactLocation.uri and a 1-based
/// region.startLine. This is the contract GitHub code scanning ingestion
/// relies on; CI validates the emitted file before uploading it.
[[nodiscard]] ValidationResult validate_sarif(std::string_view json);

/// Write `content` to `path` crash-safely via write_file_atomic (temp +
/// fsync + rename; see obs/atomic_file.hpp). A failure — or a crash at any
/// instant — leaves any previous file at `path` intact. Returns false on
/// I/O failure.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace psched::obs
