#pragma once
// ProviderObserver adapter that mirrors cloud fleet transitions into an
// obs::Recorder — lease/boot/release become instant trace events on lane 0
// plus counters — and then forwards every callback to an optional
// downstream observer. The provider holds a single observer slot, and the
// validation InvariantChecker already uses it; chaining keeps both the
// checker and the tracer live in one run without widening the provider API.
//
// Header-only: all methods are small forwarders; the recorder does the
// level gating, so an attached tracer with obs off costs one branch per
// provider transition (same as the checker-only path today).

#include "cloud/provider.hpp"
#include "obs/obs.hpp"
#include "util/types.hpp"

namespace psched::obs {

class ProviderTracer final : public cloud::ProviderObserver {
 public:
  /// Both pointers are borrowed. `downstream` (usually the run's
  /// InvariantChecker) may be null; `recorder` may be null or disabled.
  ProviderTracer(Recorder* recorder, cloud::ProviderObserver* downstream)
      : recorder_(recorder), downstream_(downstream) {}

  void on_lease(const cloud::VmInstance& vm, std::size_t leased_count,
                SimTime now) override {
    if (recorder_ != nullptr) {
      recorder_->counter_add("provider.leases", 1.0);
      recorder_->gauge_set("provider.leased_vms", static_cast<double>(leased_count));
      if (recorder_->tracing_on())
        recorder_->instant("vm.lease", 0, lease_args(vm.id, now));
    }
    if (downstream_ != nullptr) downstream_->on_lease(vm, leased_count, now);
  }

  void on_finish_boot(const cloud::VmInstance& vm, SimTime now) override {
    if (recorder_ != nullptr) {
      recorder_->counter_add("provider.boots_completed", 1.0);
      if (recorder_->tracing_on())
        recorder_->instant("vm.boot_complete", 0, lease_args(vm.id, now));
    }
    if (downstream_ != nullptr) downstream_->on_finish_boot(vm, now);
  }

  void on_assign(const cloud::VmInstance& vm, JobId job, SimTime now) override {
    if (recorder_ != nullptr) recorder_->counter_add("provider.assignments", 1.0);
    if (downstream_ != nullptr) downstream_->on_assign(vm, job, now);
  }

  void on_unassign(const cloud::VmInstance& vm, SimTime now) override {
    if (downstream_ != nullptr) downstream_->on_unassign(vm, now);
  }

  void on_release(const cloud::VmInstance& vm, double charged_hours_delta,
                  SimTime now) override {
    if (recorder_ != nullptr) {
      recorder_->counter_add("provider.releases", 1.0);
      recorder_->counter_add("provider.charged_hours", charged_hours_delta);
      if (recorder_->tracing_on())
        recorder_->instant("vm.release", 0, lease_args(vm.id, now));
    }
    if (downstream_ != nullptr) downstream_->on_release(vm, charged_hours_delta, now);
  }

  void on_boot_fail(const cloud::VmInstance& vm, double charged_hours_delta,
                    SimTime now) override {
    if (recorder_ != nullptr) {
      recorder_->counter_add("provider.boot_failures", 1.0);
      recorder_->counter_add("provider.charged_hours", charged_hours_delta);
      if (recorder_->tracing_on())
        recorder_->instant("vm.boot_fail", 0, lease_args(vm.id, now));
    }
    if (downstream_ != nullptr) downstream_->on_boot_fail(vm, charged_hours_delta, now);
  }

  void on_crash(const cloud::VmInstance& vm, double charged_hours_delta,
                SimTime now) override {
    if (recorder_ != nullptr) {
      recorder_->counter_add("provider.crashes", 1.0);
      recorder_->counter_add("provider.charged_hours", charged_hours_delta);
      if (recorder_->tracing_on())
        recorder_->instant("vm.crash", 0, lease_args(vm.id, now));
    }
    if (downstream_ != nullptr) downstream_->on_crash(vm, charged_hours_delta, now);
  }

  void on_spot_warning(const cloud::VmInstance& vm, SimTime now) override {
    if (recorder_ != nullptr) {
      recorder_->counter_add("provider.spot_warnings", 1.0);
      if (recorder_->tracing_on())
        recorder_->instant("vm.spot_warning", 0, lease_args(vm.id, now));
    }
    if (downstream_ != nullptr) downstream_->on_spot_warning(vm, now);
  }

  void on_spot_revoke(const cloud::VmInstance& vm, double charged_hours_delta,
                      SimTime now) override {
    if (recorder_ != nullptr) {
      recorder_->counter_add("provider.spot_revocations", 1.0);
      recorder_->counter_add("provider.charged_hours", charged_hours_delta);
      if (recorder_->tracing_on())
        recorder_->instant("vm.spot_revoke", 0, lease_args(vm.id, now));
    }
    if (downstream_ != nullptr)
      downstream_->on_spot_revoke(vm, charged_hours_delta, now);
  }

  void on_price_settle(const cloud::VmInstance& vm, double cost_dollars,
                       SimTime now) override {
    if (recorder_ != nullptr) recorder_->counter_add("provider.spend_dollars", cost_dollars);
    if (downstream_ != nullptr) downstream_->on_price_settle(vm, cost_dollars, now);
  }

  void on_api_reject(cloud::FailureOp op, std::size_t ops, SimTime now) override {
    if (recorder_ != nullptr) {
      recorder_->counter_add(op == cloud::FailureOp::kLease
                                 ? "provider.api_rejected_leases"
                                 : "provider.api_rejected_releases",
                             1.0);
      if (recorder_->tracing_on()) {
        std::string args = "{\"op\":\"";
        args += cloud::to_string(op);
        args += "\",\"ops\":";
        args += std::to_string(ops);
        args += ",\"sim_t\":";
        args += std::to_string(now);
        args += '}';
        recorder_->instant("provider.api_reject", 0, std::move(args));
      }
    }
    if (downstream_ != nullptr) downstream_->on_api_reject(op, ops, now);
  }

 private:
  /// Tiny args payload: {"vm": <id>, "sim_t": <seconds>}. Built by hand to
  /// keep the tracer header-only and allocation-light.
  [[nodiscard]] static std::string lease_args(VmId id, SimTime now) {
    std::string args = "{\"vm\":";
    args += std::to_string(id);
    args += ",\"sim_t\":";
    args += std::to_string(now);
    args += '}';
    return args;
  }

  Recorder* recorder_;
  cloud::ProviderObserver* downstream_;
};

}  // namespace psched::obs
