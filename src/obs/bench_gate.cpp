#include "obs/bench_gate.hpp"

#include <cmath>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace psched::obs {

namespace {

/// Format a cell for a failure message.
std::string cell_str(const JsonValue& cell) {
  if (cell.is(JsonValue::Type::kString)) return '"' + cell.string + '"';
  if (cell.is(JsonValue::Type::kNumber)) return json_number(cell.number);
  return "<non-scalar>";
}

/// Exact cell equality: type, then string bytes or numeric value. Numbers in
/// a bench report are decimal renderings of deterministic outputs, so value
/// equality (not epsilon) is the correct notion — if a deterministic column
/// drifts by any amount, that is the regression being hunted.
bool cells_equal(const JsonValue& a, const JsonValue& b) {
  if (a.type != b.type) return false;
  if (a.is(JsonValue::Type::kString)) return a.string == b.string;
  if (a.is(JsonValue::Type::kNumber)) return a.number == b.number;  // NOLINT
  return false;
}

}  // namespace

const char* to_string(ColumnKind kind) noexcept {
  switch (kind) {
    case ColumnKind::kExact: return "exact";
    case ColumnKind::kLowerBetter: return "lower-better";
    case ColumnKind::kHigherBetter: return "higher-better";
    case ColumnKind::kInformational: return "informational";
  }
  return "informational";
}

bool column_kind_from(std::string_view name, ColumnKind& out) noexcept {
  if (name == "exact") out = ColumnKind::kExact;
  else if (name == "lower-better") out = ColumnKind::kLowerBetter;
  else if (name == "higher-better") out = ColumnKind::kHigherBetter;
  else if (name == "informational") out = ColumnKind::kInformational;
  else return false;
  return true;
}

GateResult gate_bench_reports(std::string_view baseline_json,
                              std::string_view candidate_json,
                              const BenchGateConfig& config) {
  GateResult result;
  const auto fail = [&result](std::string message) {
    result.failures.push_back(std::move(message));
  };
  if (!(config.timing_tolerance >= 1.0)) {
    fail("timing_tolerance must be >= 1");
    return result;
  }

  // Both sides must be valid v1 bench reports before any comparison.
  for (const auto& [json, what] :
       {std::pair{baseline_json, "baseline"}, std::pair{candidate_json, "candidate"}}) {
    const ValidationResult valid = validate_bench_report(json);
    if (!valid.ok) fail(std::string(what) + ": " + valid.detail);
  }
  if (!result.pass()) return result;

  const JsonValue base = json_parse(baseline_json).value;
  const JsonValue cand = json_parse(candidate_json).value;

  const JsonValue& base_title = *base.find("title");
  const JsonValue& cand_title = *cand.find("title");
  if (base_title.string != cand_title.string) {
    fail("title differs (different experiment?): baseline \"" + base_title.string +
         "\" vs candidate \"" + cand_title.string + '"');
    return result;
  }

  const JsonValue& base_headers = *base.find("headers");
  const JsonValue& cand_headers = *cand.find("headers");
  if (base_headers.array.size() != cand_headers.array.size()) {
    fail("header count differs: baseline " + std::to_string(base_headers.array.size()) +
         " vs candidate " + std::to_string(cand_headers.array.size()));
    return result;
  }
  for (std::size_t c = 0; c < base_headers.array.size(); ++c) {
    if (base_headers.array[c].string != cand_headers.array[c].string)
      fail("header " + std::to_string(c) + " differs: baseline \"" +
           base_headers.array[c].string + "\" vs candidate \"" +
           cand_headers.array[c].string + '"');
  }
  if (!result.pass()) return result;

  // Column kinds: baseline's "gate" array wins (the committed contract),
  // candidate's as fallback, all-exact otherwise. If both carry one, they
  // must agree — a silent kind change could relax the gate.
  std::vector<ColumnKind> kinds(base_headers.array.size(), ColumnKind::kExact);
  const auto read_kinds = [&](const JsonValue& root, const char* what) {
    const JsonValue* gate = root.find("gate");
    if (gate == nullptr) return true;
    if (!gate->is(JsonValue::Type::kArray) ||
        gate->array.size() != base_headers.array.size()) {
      fail(std::string(what) + ": \"gate\" is not an array of one kind per column");
      return false;
    }
    for (std::size_t c = 0; c < gate->array.size(); ++c) {
      if (!gate->array[c].is(JsonValue::Type::kString) ||
          !column_kind_from(gate->array[c].string, kinds[c])) {
        fail(std::string(what) + ": unknown gate kind in column " + std::to_string(c));
        return false;
      }
    }
    return true;
  };
  const bool base_has_gate = base.find("gate") != nullptr;
  if (!read_kinds(base_has_gate ? base : cand, base_has_gate ? "baseline" : "candidate"))
    return result;
  if (base_has_gate && cand.find("gate") != nullptr) {
    std::vector<ColumnKind> cand_kinds(kinds.size(), ColumnKind::kExact);
    std::swap(kinds, cand_kinds);
    if (!read_kinds(cand, "candidate")) return result;
    std::swap(kinds, cand_kinds);
    if (kinds != cand_kinds) {
      fail("baseline and candidate disagree on column gate kinds");
      return result;
    }
  }

  const JsonValue& base_rows = *base.find("rows");
  const JsonValue& cand_rows = *cand.find("rows");
  if (base_rows.array.size() != cand_rows.array.size()) {
    fail("row count differs: baseline " + std::to_string(base_rows.array.size()) +
         " vs candidate " + std::to_string(cand_rows.array.size()));
    return result;
  }

  for (std::size_t r = 0; r < base_rows.array.size(); ++r) {
    const JsonValue& brow = base_rows.array[r];
    const JsonValue& crow = cand_rows.array[r];
    for (std::size_t c = 0; c < kinds.size(); ++c) {
      const JsonValue& bcell = brow.array[c];
      const JsonValue& ccell = crow.array[c];
      const std::string at = "row " + std::to_string(r) + ", column \"" +
                             base_headers.array[c].string + '"';
      switch (kinds[c]) {
        case ColumnKind::kInformational:
          continue;
        case ColumnKind::kExact:
          ++result.cells_checked;
          if (!cells_equal(bcell, ccell))
            fail(at + ": expected " + cell_str(bcell) + ", got " + cell_str(ccell));
          break;
        case ColumnKind::kLowerBetter:
        case ColumnKind::kHigherBetter: {
          ++result.cells_checked;
          if (!bcell.is(JsonValue::Type::kNumber) ||
              !ccell.is(JsonValue::Type::kNumber)) {
            fail(at + ": timing-gated cell is not a number");
            break;
          }
          const double baseline = bcell.number;
          const double candidate = ccell.number;
          if (!(std::isfinite(baseline) && std::isfinite(candidate)) ||
              baseline < 0.0 || candidate < 0.0) {
            fail(at + ": timing-gated cell is not a finite non-negative number");
            break;
          }
          const bool worse =
              kinds[c] == ColumnKind::kLowerBetter
                  ? candidate > baseline * config.timing_tolerance
                  : candidate * config.timing_tolerance < baseline;
          if (worse)
            fail(at + ": " + cell_str(ccell) + " regressed beyond " +
                 json_number(config.timing_tolerance) + "x of baseline " +
                 cell_str(bcell));
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace psched::obs
