#pragma once
// What a scheduling policy is allowed to see: the waiting queue (with waits
// and *predicted* runtimes — policies never see actual runtimes) and an
// aggregate view of the leased fleet. Both the outer engine and the online
// simulator construct SchedContext values, so every policy behaves
// identically in reality and in portfolio simulation.

#include <cstddef>
#include <span>
#include <vector>

#include "util/types.hpp"
#include "workload/job.hpp"

namespace psched::cloud {
struct PricingView;
}  // namespace psched::cloud

namespace psched::policy {

/// A job waiting in the queue, as a policy sees it.
struct QueuedJob {
  JobId id = kInvalidJob;
  SimTime submit = 0.0;
  int procs = 1;
  double predicted_runtime = 1.0;  ///< from the active RuntimePredictor

  [[nodiscard]] double wait(SimTime now) const noexcept { return now - submit; }
};

/// Snapshot handed to provisioning policies.
struct SchedContext {
  SimTime now = 0.0;
  std::span<const QueuedJob> queue;
  std::size_t idle_vms = 0;     ///< usable now
  std::size_t booting_vms = 0;  ///< leased, usable soon
  std::size_t total_vms = 0;    ///< leased = idle + booting + busy
  std::size_t max_vms = 256;    ///< provider cap
  /// Pricing snapshot (cloud/pricing.hpp); nullptr when pricing is off.
  /// Tier-aware policies consult it in lease_plan(); with it null every
  /// policy behaves exactly as in the single-price paper model.
  const cloud::PricingView* pricing = nullptr;

  /// Total processors requested by the queue.
  [[nodiscard]] std::size_t queued_procs() const noexcept;

  /// Widest queued job (0 when the queue is empty).
  [[nodiscard]] std::size_t max_queued_procs() const noexcept;
};

/// An idle VM as seen by VM-selection policies.
struct VmCandidate {
  VmId id = kInvalidVm;
  SimTime lease_time = 0.0;  ///< billing clock zero, for remaining-paid math
};

}  // namespace psched::policy
