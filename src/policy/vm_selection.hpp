#pragma once
// The three VM-selection policies (paper §3.1), classic online bin-packing
// heuristics adapted to hourly-billed VMs. Idle VMs differ only in how much
// already-paid time they have left before the next hourly charge; the
// policies rank candidates by the paid time that would remain *after*
// running the job (predicted runtime) on them.

#include <memory>
#include <string>
#include <vector>

#include "policy/context.hpp"

namespace psched::policy {

class VmSelectionPolicy {
 public:
  virtual ~VmSelectionPolicy() = default;

  /// Reorder `candidates` into preference order (most preferred first) for
  /// a job with the given predicted runtime starting at `now`. The caller
  /// takes the first `procs` entries.
  virtual void order(std::vector<VmCandidate>& candidates, double predicted_runtime,
                     SimTime now,
                     SimDuration billing_quantum = kSecondsPerHour) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// FirstFit (baseline): keep the candidates' existing order — no sort cost.
class FirstFit final : public VmSelectionPolicy {
 public:
  void order(std::vector<VmCandidate>& candidates, double predicted_runtime,
             SimTime now, SimDuration billing_quantum) const override;
  [[nodiscard]] std::string name() const override { return "FirstFit"; }
};

/// BestFit: prefer VMs whose remaining paid time after the job is minimal
/// (pack work tightly into already-charged hours).
class BestFit final : public VmSelectionPolicy {
 public:
  void order(std::vector<VmCandidate>& candidates, double predicted_runtime,
             SimTime now, SimDuration billing_quantum) const override;
  [[nodiscard]] std::string name() const override { return "BestFit"; }
};

/// WorstFit: prefer VMs whose remaining paid time after the job is maximal
/// (spread usage, keep slack for future wide jobs).
class WorstFit final : public VmSelectionPolicy {
 public:
  void order(std::vector<VmCandidate>& candidates, double predicted_runtime,
             SimTime now, SimDuration billing_quantum) const override;
  [[nodiscard]] std::string name() const override { return "WorstFit"; }
};

/// Remaining paid seconds on a candidate VM after it would finish a job of
/// `predicted_runtime` seconds started at `now` (the BF/WF ranking key).
[[nodiscard]] double remaining_after_run(const VmCandidate& vm, double predicted_runtime,
                                         SimTime now,
                                         SimDuration billing_quantum = kSecondsPerHour) noexcept;

/// Factory by name ("FirstFit", "BestFit", "WorstFit", or "FF"/"BF"/"WF").
[[nodiscard]] std::unique_ptr<VmSelectionPolicy> make_vm_selection(const std::string& name);

/// All three, in the paper's Figure-5 iteration order (BF, FF, WF).
[[nodiscard]] std::vector<std::unique_ptr<VmSelectionPolicy>> all_vm_selection();

}  // namespace psched::policy
