#include "policy/portfolio.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace psched::policy {

std::string PolicyTriple::name() const {
  PSCHED_ASSERT(provisioning && job_selection && vm_selection);
  return provisioning->name() + "-" + job_selection->name() + "-" + vm_selection->name();
}

Portfolio Portfolio::paper_portfolio() {
  Portfolio p;
  for (auto& policy : all_provisioning()) p.add_provisioning(std::move(policy));
  for (auto& policy : all_job_selection()) p.add_job_selection(std::move(policy));
  for (auto& policy : all_vm_selection()) p.add_vm_selection(std::move(policy));
  p.build_combinations();
  PSCHED_ASSERT(p.size() == 60);
  return p;
}

Portfolio Portfolio::pricing_portfolio() {
  Portfolio p;
  for (auto& policy : all_provisioning()) p.add_provisioning(std::move(policy));
  for (auto& policy : pricing_provisioning()) p.add_provisioning(std::move(policy));
  for (auto& policy : all_job_selection()) p.add_job_selection(std::move(policy));
  for (auto& policy : all_vm_selection()) p.add_vm_selection(std::move(policy));
  p.build_combinations();
  PSCHED_ASSERT(p.size() == 108);
  return p;
}

void Portfolio::add_provisioning(std::unique_ptr<ProvisioningPolicy> p) {
  PSCHED_ASSERT(p != nullptr);
  provisioning_.push_back(std::move(p));
}

void Portfolio::add_job_selection(std::unique_ptr<JobSelectionPolicy> p) {
  PSCHED_ASSERT(p != nullptr);
  job_selection_.push_back(std::move(p));
}

void Portfolio::add_vm_selection(std::unique_ptr<VmSelectionPolicy> p) {
  PSCHED_ASSERT(p != nullptr);
  vm_selection_.push_back(std::move(p));
}

void Portfolio::build_combinations() {
  triples_.clear();
  triples_.reserve(provisioning_.size() * job_selection_.size() * vm_selection_.size());
  for (const auto& prov : provisioning_)
    for (const auto& jobsel : job_selection_)
      for (const auto& vmsel : vm_selection_)
        triples_.push_back(PolicyTriple{prov.get(), jobsel.get(), vmsel.get()});
}

const PolicyTriple* Portfolio::find(const std::string& name) const {
  const auto it = std::find_if(triples_.begin(), triples_.end(),
                               [&](const PolicyTriple& t) { return t.name() == name; });
  return it == triples_.end() ? nullptr : &*it;
}

std::size_t Portfolio::index_of(const PolicyTriple& triple) const {
  const auto it = std::find(triples_.begin(), triples_.end(), triple);
  return static_cast<std::size_t>(it - triples_.begin());
}

}  // namespace psched::policy
