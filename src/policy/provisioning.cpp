#include "policy/provisioning.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "workload/job.hpp"

namespace psched::policy {

namespace {
/// max(0, want - have) in unsigned arithmetic.
std::size_t deficit(std::size_t want, std::size_t have) noexcept {
  return want > have ? want - have : 0;
}

/// Threshold comparisons are inclusive-with-epsilon so that the exact
/// crossing instants returned by next_change() do trigger the policy
/// (the online simulator fast-forwards to precisely those instants).
constexpr double kCrossEps = 1e-6;

/// ODA's deficit — the fleet sizing every tier-aware policy shares.
std::size_t oda_deficit(const SchedContext& ctx) noexcept {
  return deficit(ctx.queued_procs(), ctx.idle_vms + ctx.booting_vms);
}

/// The paper-model plan: everything on-demand in family 0.
void default_plan(std::size_t count, std::vector<cloud::LeaseRequest>& out) {
  out.clear();
  if (count > 0)
    out.push_back(cloud::LeaseRequest{count, 0, cloud::PurchaseTier::kOnDemand});
}

/// Whether the spot market is open and actually discounted (a fraction of
/// 1.0 would make spot pure downside: same price, revocable).
bool spot_worth_it(const cloud::PricingView& pv) noexcept {
  return pv.spot_enabled() && pv.spot_price_fraction < 1.0;
}
}  // namespace

void ProvisioningPolicy::lease_plan(const SchedContext& ctx,
                                    std::vector<cloud::LeaseRequest>& out) const {
  const std::size_t count = vms_to_lease(ctx);
  const cloud::PricingView* pv = ctx.pricing;
  if (pv == nullptr || !pv->enabled || pv->families.size() <= 1) {
    default_plan(count, out);
    return;
  }
  // Tier-unaware policies in a multi-family market: on-demand from family 0
  // ("the" paper VM type), spilling across the remaining families in index
  // order only where a cap binds. Without the spill a capped family 0
  // permanently starves any job wider than its cap — the run never ends.
  out.clear();
  std::size_t need = count;
  for (std::size_t f = 0; f < pv->families.size() && need > 0; ++f) {
    const std::size_t take = std::min(need, pv->family_free(f));
    if (take == 0) continue;
    out.push_back(cloud::LeaseRequest{take, static_cast<std::uint32_t>(f),
                                      cloud::PurchaseTier::kOnDemand});
    need -= take;
  }
}

std::size_t OnDemandAll::vms_to_lease(const SchedContext& ctx) const {
  return deficit(ctx.queued_procs(), ctx.idle_vms + ctx.booting_vms);
}

std::size_t OnDemandBalance::vms_to_lease(const SchedContext& ctx) const {
  return deficit(ctx.queued_procs(), ctx.total_vms);
}

std::size_t OnDemandExecTime::vms_to_lease(const SchedContext& ctx) const {
  double work = 0.0;  // predicted processor-seconds queued
  for (const QueuedJob& j : ctx.queue) work += j.procs * j.predicted_runtime;
  auto target = static_cast<std::size_t>(std::ceil(work / kSecondsPerHour));
  // Starvation guard (documented deviation): a job wider than the target
  // fleet that has already waited an hour forces the fleet up to its width.
  for (const QueuedJob& j : ctx.queue) {
    const auto width = static_cast<std::size_t>(j.procs);
    if (width > ctx.total_vms && j.wait(ctx.now) + kCrossEps >= kStarvationWait)
      target = std::max(target, width);
  }
  return deficit(target, ctx.total_vms);
}

SimTime OnDemandExecTime::next_change(const SchedContext& ctx) const {
  // The work-based target is wait-independent; only the starvation guard
  // changes with time: a job wider than the fleet arms the guard at
  // submit + kStarvationWait.
  SimTime next = kTimeNever;
  for (const QueuedJob& j : ctx.queue) {
    if (static_cast<std::size_t>(j.procs) > ctx.total_vms) {
      const SimTime crossing = j.submit + kStarvationWait;
      if (crossing > ctx.now && crossing < next) next = crossing;
    }
  }
  return next;
}

std::size_t OnDemandMaximum::vms_to_lease(const SchedContext& ctx) const {
  return deficit(ctx.max_queued_procs(), ctx.idle_vms + ctx.booting_vms);
}

std::size_t OnDemandXFactor::vms_to_lease(const SchedContext& ctx) const {
  std::size_t urgent_procs = 0;
  for (const QueuedJob& j : ctx.queue) {
    // (q + max(rt,10)) / max(rt,10) >= 2  <=>  q >= max(rt, 10).
    const double bounded_rt = std::max(j.predicted_runtime, kBound);
    if (j.wait(ctx.now) + kCrossEps >= (kThreshold - 1.0) * bounded_rt)
      urgent_procs += static_cast<std::size_t>(j.procs);
  }
  return deficit(urgent_procs, ctx.idle_vms + ctx.booting_vms);
}

SimTime OnDemandXFactor::next_change(const SchedContext& ctx) const {
  // Job j crosses the urgency threshold when wait > max(rt, 10):
  //   (q + max(rt,10)) / max(rt,10) > 2  <=>  q > max(rt, 10).
  SimTime next = kTimeNever;
  for (const QueuedJob& j : ctx.queue) {
    const SimTime crossing = j.submit + std::max(j.predicted_runtime, kBound);
    if (crossing > ctx.now && crossing < next) next = crossing;
  }
  return next;
}

std::size_t CheapestFeasible::vms_to_lease(const SchedContext& ctx) const {
  return oda_deficit(ctx);
}

void CheapestFeasible::lease_plan(const SchedContext& ctx,
                                  std::vector<cloud::LeaseRequest>& out) const {
  std::size_t need = vms_to_lease(ctx);
  const cloud::PricingView* pv = ctx.pricing;
  if (pv == nullptr || !pv->enabled) {
    default_plan(need, out);
    return;
  }
  out.clear();
  if (need == 0) return;
  // Reserved commitment headroom is free at the margin: always drain it
  // first, whatever the market does.
  const std::size_t reserved = std::min(need, pv->reserved_free());
  if (reserved > 0) {
    out.push_back(
        cloud::LeaseRequest{reserved, 0, cloud::PurchaseTier::kReserved});
    need -= reserved;
  }
  if (need == 0) return;
  const cloud::PurchaseTier tier = spot_worth_it(*pv)
                                       ? cloud::PurchaseTier::kSpot
                                       : cloud::PurchaseTier::kOnDemand;
  // Spill across families from cheapest to priciest as family caps bind.
  std::vector<std::size_t> order(pv->families.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pv->families[a].price < pv->families[b].price;
  });
  for (const std::size_t f : order) {
    const std::size_t take = std::min(need, pv->family_free(f));
    if (take == 0) continue;
    out.push_back(cloud::LeaseRequest{take, static_cast<std::uint32_t>(f), tier});
    need -= take;
    if (need == 0) break;
  }
  // A remainder here means every family cap binds; nothing feasible left.
}

std::size_t SpotFirst::vms_to_lease(const SchedContext& ctx) const {
  return oda_deficit(ctx);
}

void SpotFirst::lease_plan(const SchedContext& ctx,
                           std::vector<cloud::LeaseRequest>& out) const {
  const std::size_t need = vms_to_lease(ctx);
  const cloud::PricingView* pv = ctx.pricing;
  if (pv == nullptr || !pv->enabled) {
    default_plan(need, out);
    return;
  }
  out.clear();
  if (need == 0) return;
  const auto family = static_cast<std::uint32_t>(pv->cheapest_family());
  const cloud::PurchaseTier tier = pv->spot_enabled()
                                       ? cloud::PurchaseTier::kSpot
                                       : cloud::PurchaseTier::kOnDemand;
  out.push_back(cloud::LeaseRequest{need, family, tier});
}

std::size_t ReservedBaseline::vms_to_lease(const SchedContext& ctx) const {
  return oda_deficit(ctx);
}

void ReservedBaseline::lease_plan(const SchedContext& ctx,
                                  std::vector<cloud::LeaseRequest>& out) const {
  std::size_t need = vms_to_lease(ctx);
  const cloud::PricingView* pv = ctx.pricing;
  if (pv == nullptr || !pv->enabled) {
    default_plan(need, out);
    return;
  }
  out.clear();
  if (need == 0) return;
  const std::size_t reserved = std::min(need, pv->reserved_free());
  if (reserved > 0) {
    out.push_back(
        cloud::LeaseRequest{reserved, 0, cloud::PurchaseTier::kReserved});
    need -= reserved;
  }
  if (need == 0) return;
  const auto family = static_cast<std::uint32_t>(pv->cheapest_family());
  const cloud::PurchaseTier tier = pv->spot_enabled()
                                       ? cloud::PurchaseTier::kSpot
                                       : cloud::PurchaseTier::kOnDemand;
  out.push_back(cloud::LeaseRequest{need, family, tier});
}

std::size_t PriceThreshold::vms_to_lease(const SchedContext& ctx) const {
  const std::size_t need = oda_deficit(ctx);
  const cloud::PricingView* pv = ctx.pricing;
  if (need == 0 || pv == nullptr || !pv->enabled) return need;
  if (pv->multiplier <= kMultiplierThreshold + kCrossEps) return need;
  // Expensive market: defer — unless some queued job has starved past the
  // guard, which makes waiting longer worse than paying the surge.
  for (const QueuedJob& j : ctx.queue)
    if (j.wait(ctx.now) + kCrossEps >= kStarvationWait) return need;
  return 0;
}

SimTime PriceThreshold::next_change(const SchedContext& ctx) const {
  // Only the starvation guard is wait-dependent, and it only matters while
  // the policy is deferring (expensive market, nothing starved yet). The
  // market itself re-prices on the epoch grid, which the outer engine sees
  // every tick and the online simulator freezes at its snapshot (§12).
  const cloud::PricingView* pv = ctx.pricing;
  if (pv == nullptr || !pv->enabled ||
      pv->multiplier <= kMultiplierThreshold + kCrossEps)
    return kTimeNever;
  SimTime next = kTimeNever;
  for (const QueuedJob& j : ctx.queue) {
    const SimTime crossing = j.submit + kStarvationWait;
    if (crossing > ctx.now && crossing < next) next = crossing;
  }
  return next;
}

void PriceThreshold::lease_plan(const SchedContext& ctx,
                                std::vector<cloud::LeaseRequest>& out) const {
  const std::size_t need = vms_to_lease(ctx);
  const cloud::PricingView* pv = ctx.pricing;
  if (pv == nullptr || !pv->enabled) {
    default_plan(need, out);
    return;
  }
  out.clear();
  if (need == 0) return;
  out.push_back(cloud::LeaseRequest{
      need, static_cast<std::uint32_t>(pv->cheapest_family()),
      cloud::PurchaseTier::kOnDemand});
}

std::unique_ptr<ProvisioningPolicy> make_provisioning(const std::string& name) {
  if (name == "ODA") return std::make_unique<OnDemandAll>();
  if (name == "ODB") return std::make_unique<OnDemandBalance>();
  if (name == "ODE") return std::make_unique<OnDemandExecTime>();
  if (name == "ODM") return std::make_unique<OnDemandMaximum>();
  if (name == "ODX") return std::make_unique<OnDemandXFactor>();
  if (name == "CPF") return std::make_unique<CheapestFeasible>();
  if (name == "SPT") return std::make_unique<SpotFirst>();
  if (name == "RSB") return std::make_unique<ReservedBaseline>();
  if (name == "PRT") return std::make_unique<PriceThreshold>();
  throw std::invalid_argument("unknown provisioning policy: " + name);
}

std::vector<std::unique_ptr<ProvisioningPolicy>> all_provisioning() {
  std::vector<std::unique_ptr<ProvisioningPolicy>> out;
  for (const char* name : {"ODA", "ODB", "ODE", "ODM", "ODX"})
    out.push_back(make_provisioning(name));
  return out;
}

std::vector<std::unique_ptr<ProvisioningPolicy>> pricing_provisioning() {
  std::vector<std::unique_ptr<ProvisioningPolicy>> out;
  for (const char* name : {"CPF", "SPT", "RSB", "PRT"})
    out.push_back(make_provisioning(name));
  return out;
}

}  // namespace psched::policy
