#include "policy/provisioning.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "workload/job.hpp"

namespace psched::policy {

namespace {
/// max(0, want - have) in unsigned arithmetic.
std::size_t deficit(std::size_t want, std::size_t have) noexcept {
  return want > have ? want - have : 0;
}

/// Threshold comparisons are inclusive-with-epsilon so that the exact
/// crossing instants returned by next_change() do trigger the policy
/// (the online simulator fast-forwards to precisely those instants).
constexpr double kCrossEps = 1e-6;
}  // namespace

std::size_t OnDemandAll::vms_to_lease(const SchedContext& ctx) const {
  return deficit(ctx.queued_procs(), ctx.idle_vms + ctx.booting_vms);
}

std::size_t OnDemandBalance::vms_to_lease(const SchedContext& ctx) const {
  return deficit(ctx.queued_procs(), ctx.total_vms);
}

std::size_t OnDemandExecTime::vms_to_lease(const SchedContext& ctx) const {
  double work = 0.0;  // predicted processor-seconds queued
  for (const QueuedJob& j : ctx.queue) work += j.procs * j.predicted_runtime;
  auto target = static_cast<std::size_t>(std::ceil(work / kSecondsPerHour));
  // Starvation guard (documented deviation): a job wider than the target
  // fleet that has already waited an hour forces the fleet up to its width.
  for (const QueuedJob& j : ctx.queue) {
    const auto width = static_cast<std::size_t>(j.procs);
    if (width > ctx.total_vms && j.wait(ctx.now) + kCrossEps >= kStarvationWait)
      target = std::max(target, width);
  }
  return deficit(target, ctx.total_vms);
}

SimTime OnDemandExecTime::next_change(const SchedContext& ctx) const {
  // The work-based target is wait-independent; only the starvation guard
  // changes with time: a job wider than the fleet arms the guard at
  // submit + kStarvationWait.
  SimTime next = kTimeNever;
  for (const QueuedJob& j : ctx.queue) {
    if (static_cast<std::size_t>(j.procs) > ctx.total_vms) {
      const SimTime crossing = j.submit + kStarvationWait;
      if (crossing > ctx.now && crossing < next) next = crossing;
    }
  }
  return next;
}

std::size_t OnDemandMaximum::vms_to_lease(const SchedContext& ctx) const {
  return deficit(ctx.max_queued_procs(), ctx.idle_vms + ctx.booting_vms);
}

std::size_t OnDemandXFactor::vms_to_lease(const SchedContext& ctx) const {
  std::size_t urgent_procs = 0;
  for (const QueuedJob& j : ctx.queue) {
    // (q + max(rt,10)) / max(rt,10) >= 2  <=>  q >= max(rt, 10).
    const double bounded_rt = std::max(j.predicted_runtime, kBound);
    if (j.wait(ctx.now) + kCrossEps >= (kThreshold - 1.0) * bounded_rt)
      urgent_procs += static_cast<std::size_t>(j.procs);
  }
  return deficit(urgent_procs, ctx.idle_vms + ctx.booting_vms);
}

SimTime OnDemandXFactor::next_change(const SchedContext& ctx) const {
  // Job j crosses the urgency threshold when wait > max(rt, 10):
  //   (q + max(rt,10)) / max(rt,10) > 2  <=>  q > max(rt, 10).
  SimTime next = kTimeNever;
  for (const QueuedJob& j : ctx.queue) {
    const SimTime crossing = j.submit + std::max(j.predicted_runtime, kBound);
    if (crossing > ctx.now && crossing < next) next = crossing;
  }
  return next;
}

std::unique_ptr<ProvisioningPolicy> make_provisioning(const std::string& name) {
  if (name == "ODA") return std::make_unique<OnDemandAll>();
  if (name == "ODB") return std::make_unique<OnDemandBalance>();
  if (name == "ODE") return std::make_unique<OnDemandExecTime>();
  if (name == "ODM") return std::make_unique<OnDemandMaximum>();
  if (name == "ODX") return std::make_unique<OnDemandXFactor>();
  throw std::invalid_argument("unknown provisioning policy: " + name);
}

std::vector<std::unique_ptr<ProvisioningPolicy>> all_provisioning() {
  std::vector<std::unique_ptr<ProvisioningPolicy>> out;
  for (const char* name : {"ODA", "ODB", "ODE", "ODM", "ODX"})
    out.push_back(make_provisioning(name));
  return out;
}

}  // namespace psched::policy
