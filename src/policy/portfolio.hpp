#pragma once
// The policy portfolio: the cross product of provisioning x job-selection x
// VM-selection policies (60 combinations with the paper's constituents),
// plus support for user-registered custom policies.

#include <memory>
#include <string>
#include <vector>

#include "policy/job_selection.hpp"
#include "policy/provisioning.hpp"
#include "policy/vm_selection.hpp"

namespace psched::policy {

/// One complete scheduling policy: non-owning triple into the portfolio's
/// policy pools. Cheap to copy; valid as long as its Portfolio lives.
struct PolicyTriple {
  const ProvisioningPolicy* provisioning = nullptr;
  const JobSelectionPolicy* job_selection = nullptr;
  const VmSelectionPolicy* vm_selection = nullptr;

  [[nodiscard]] std::string name() const;

  [[nodiscard]] bool operator==(const PolicyTriple& other) const noexcept = default;
};

class Portfolio {
 public:
  /// Empty portfolio; add policy pools then call build_combinations().
  Portfolio() = default;

  /// The paper's full portfolio: {ODA,ODB,ODE,ODM,ODX} x
  /// {FCFS,LXF,UNICEF,WFP3} x {BestFit,FirstFit,WorstFit} = 60 policies,
  /// combination order matching the paper's Figure 5 caption.
  [[nodiscard]] static Portfolio paper_portfolio();

  /// The pricing-extended portfolio (DESIGN.md §12): the paper's five
  /// provisioning policies plus the four tier-aware ones (CPF, SPT, RSB,
  /// PRT) crossed with the same selection pools — 9 x 4 x 3 = 108
  /// policies. Only meaningful when the engine runs with pricing enabled;
  /// with pricing off the four extras all degrade to ODA duplicates.
  [[nodiscard]] static Portfolio pricing_portfolio();

  /// Register additional constituent policies (takes ownership). Call
  /// build_combinations() afterwards to refresh the triples.
  void add_provisioning(std::unique_ptr<ProvisioningPolicy> p);
  void add_job_selection(std::unique_ptr<JobSelectionPolicy> p);
  void add_vm_selection(std::unique_ptr<VmSelectionPolicy> p);

  /// Rebuild the cross product of all registered pools.
  void build_combinations();

  [[nodiscard]] const std::vector<PolicyTriple>& policies() const noexcept {
    return triples_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return triples_.size(); }

  /// Find a policy by its "PROV-JOBSEL-VMSEL" name; nullptr when absent.
  [[nodiscard]] const PolicyTriple* find(const std::string& name) const;

  /// Index of a triple within policies(); size() when absent.
  [[nodiscard]] std::size_t index_of(const PolicyTriple& triple) const;

 private:
  std::vector<std::unique_ptr<ProvisioningPolicy>> provisioning_;
  std::vector<std::unique_ptr<JobSelectionPolicy>> job_selection_;
  std::vector<std::unique_ptr<VmSelectionPolicy>> vm_selection_;
  std::vector<PolicyTriple> triples_;
};

}  // namespace psched::policy
