#include "policy/job_selection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace psched::policy {

namespace {
/// Runtime floor: priorities divide by ti, and predictions are >= 1 s by
/// contract, but guard against degenerate inputs in user-built contexts.
double safe_runtime(const QueuedJob& j) noexcept {
  return std::max(1.0, j.predicted_runtime);
}
}  // namespace

double FcfsSelection::priority(const QueuedJob& job, SimTime now) const {
  return job.wait(now);
}

double LxfSelection::priority(const QueuedJob& job, SimTime now) const {
  const double t = safe_runtime(job);
  return (job.wait(now) + t) / t;
}

double Wfp3Selection::priority(const QueuedJob& job, SimTime now) const {
  const double x = job.wait(now) / safe_runtime(job);
  return x * x * x * static_cast<double>(job.procs);
}

double UnicefSelection::priority(const QueuedJob& job, SimTime now) const {
  const double width = std::max(1.0, std::log2(static_cast<double>(std::max(job.procs, 2))));
  return job.wait(now) / (width * safe_runtime(job));
}

void order_queue(std::vector<QueuedJob>& queue, const JobSelectionPolicy& policy,
                 SimTime now, OrderScratch& scratch) {
  // Compute priorities once (they are pure in the job), then sort on them.
  std::vector<std::pair<double, std::size_t>>& keyed = scratch.keyed;
  keyed.resize(queue.size());
  for (std::size_t i = 0; i < queue.size(); ++i)
    keyed[i] = {policy.priority(queue[i], now), i};
  std::stable_sort(keyed.begin(), keyed.end(), [&](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    const QueuedJob& ja = queue[a.second];
    const QueuedJob& jb = queue[b.second];
    if (ja.submit != jb.submit) return ja.submit < jb.submit;
    return ja.id < jb.id;
  });
  std::vector<QueuedJob>& ordered = scratch.reordered;
  ordered.clear();
  ordered.reserve(queue.size());
  for (const auto& [priority, index] : keyed) ordered.push_back(queue[index]);
  queue.swap(ordered);
}

void order_queue(std::vector<QueuedJob>& queue, const JobSelectionPolicy& policy,
                 SimTime now) {
  OrderScratch scratch;
  order_queue(queue, policy, now, scratch);
}

std::unique_ptr<JobSelectionPolicy> make_job_selection(const std::string& name) {
  if (name == "FCFS") return std::make_unique<FcfsSelection>();
  if (name == "LXF") return std::make_unique<LxfSelection>();
  if (name == "WFP3") return std::make_unique<Wfp3Selection>();
  if (name == "UNICEF") return std::make_unique<UnicefSelection>();
  throw std::invalid_argument("unknown job-selection policy: " + name);
}

std::vector<std::unique_ptr<JobSelectionPolicy>> all_job_selection() {
  std::vector<std::unique_ptr<JobSelectionPolicy>> out;
  for (const char* name : {"FCFS", "LXF", "UNICEF", "WFP3"})
    out.push_back(make_job_selection(name));
  return out;
}

}  // namespace psched::policy
