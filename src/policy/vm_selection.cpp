#include "policy/vm_selection.hpp"

#include <algorithm>
#include <stdexcept>

#include "cloud/vm.hpp"

namespace psched::policy {

double remaining_after_run(const VmCandidate& vm, double predicted_runtime,
                           SimTime now, SimDuration billing_quantum) noexcept {
  return cloud::remaining_paid_at(vm.lease_time, now + predicted_runtime,
                                  billing_quantum);
}

void FirstFit::order(std::vector<VmCandidate>& candidates, double predicted_runtime,
                     SimTime now, SimDuration billing_quantum) const {
  (void)candidates;
  (void)predicted_runtime;
  (void)now;
  (void)billing_quantum;  // identity: candidates arrive in stable id order
}

namespace {
template <bool Ascending>
void sort_by_remaining(std::vector<VmCandidate>& candidates, double predicted_runtime,
                       SimTime now, SimDuration quantum) {
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const VmCandidate& a, const VmCandidate& b) {
                     const double ra =
                         remaining_after_run(a, predicted_runtime, now, quantum);
                     const double rb =
                         remaining_after_run(b, predicted_runtime, now, quantum);
                     if (ra != rb) return Ascending ? ra < rb : ra > rb;
                     return a.id < b.id;
                   });
}
}  // namespace

void BestFit::order(std::vector<VmCandidate>& candidates, double predicted_runtime,
                    SimTime now, SimDuration billing_quantum) const {
  sort_by_remaining<true>(candidates, predicted_runtime, now, billing_quantum);
}

void WorstFit::order(std::vector<VmCandidate>& candidates, double predicted_runtime,
                     SimTime now, SimDuration billing_quantum) const {
  sort_by_remaining<false>(candidates, predicted_runtime, now, billing_quantum);
}

std::unique_ptr<VmSelectionPolicy> make_vm_selection(const std::string& name) {
  if (name == "FirstFit" || name == "FF") return std::make_unique<FirstFit>();
  if (name == "BestFit" || name == "BF") return std::make_unique<BestFit>();
  if (name == "WorstFit" || name == "WF") return std::make_unique<WorstFit>();
  throw std::invalid_argument("unknown VM-selection policy: " + name);
}

std::vector<std::unique_ptr<VmSelectionPolicy>> all_vm_selection() {
  std::vector<std::unique_ptr<VmSelectionPolicy>> out;
  for (const char* name : {"BestFit", "FirstFit", "WorstFit"})
    out.push_back(make_vm_selection(name));
  return out;
}

}  // namespace psched::policy
