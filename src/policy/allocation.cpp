#include "policy/allocation.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace psched::policy {

namespace {

/// Pick `count` VMs from the idle pool in the VM-selection policy's
/// preference order, remove them from the pool, mark them busy in the
/// working copy until `until`, and append their ids to `plan.vm_ids`.
/// Returns the appended range as a Start (queue_index filled by the caller).
AllocationPlan::Start take_vms(std::vector<VmCandidate>& idle, AllocationScratch& scratch,
                               int count, double predicted_runtime, SimTime now,
                               SimTime until, const VmSelectionPolicy& vm_selection,
                               SimDuration billing_quantum, AllocationPlan& plan) {
  vm_selection.order(idle, predicted_runtime, now, billing_quantum);
  AllocationPlan::Start start;
  start.vm_begin = static_cast<std::uint32_t>(plan.vm_ids.size());
  for (int p = 0; p < count; ++p) plan.vm_ids.push_back(idle[static_cast<std::size_t>(p)].id);
  idle.erase(idle.begin(), idle.begin() + count);
  start.vm_end = static_cast<std::uint32_t>(plan.vm_ids.size());
  for (std::uint32_t v = start.vm_begin; v < start.vm_end; ++v) {
    const VmId id = plan.vm_ids[v];
    // O(1) row lookup instead of the old per-VM linear search.
    scratch.vms[scratch.vm_row[static_cast<std::size_t>(id)]].available_at = until;
  }
  return start;
}

}  // namespace

void plan_allocation_into(SimTime now, std::span<const QueuedJob> ordered_queue,
                          std::span<const VmAvail> vms,
                          const VmSelectionPolicy& vm_selection, AllocationMode mode,
                          SimDuration billing_quantum, AllocationPlan& out,
                          AllocationScratch& scratch) {
  out.clear();

  // Working copy + id -> row map (ids are arbitrary; the map is a dense
  // vector sized to the largest id, reused across calls).
  scratch.vms.assign(vms.begin(), vms.end());
  VmId max_id = -1;
  for (const VmAvail& vm : vms) max_id = std::max(max_id, vm.id);
  if (scratch.vm_row.size() < static_cast<std::size_t>(max_id + 1))
    scratch.vm_row.resize(static_cast<std::size_t>(max_id + 1));
  for (std::size_t row = 0; row < scratch.vms.size(); ++row)
    scratch.vm_row[static_cast<std::size_t>(scratch.vms[row].id)] =
        static_cast<std::uint32_t>(row);

  std::vector<VmCandidate>& idle = scratch.idle;
  idle.clear();
  for (const VmAvail& vm : scratch.vms)
    if (vm.available_at <= now) idle.push_back({vm.id, vm.lease_time});

  // Phase 1 (both modes): serve from the head while jobs fit.
  std::size_t head = ordered_queue.size();  // first unserved position
  for (std::size_t i = 0; i < ordered_queue.size(); ++i) {
    const QueuedJob& job = ordered_queue[i];
    if (idle.size() < static_cast<std::size_t>(job.procs)) {
      head = i;
      break;
    }
    AllocationPlan::Start start =
        take_vms(idle, scratch, job.procs, job.predicted_runtime, now,
                 now + job.predicted_runtime, vm_selection, billing_quantum, out);
    start.queue_index = i;
    out.starts.push_back(start);
  }
  if (mode == AllocationMode::kHeadOfLine || head >= ordered_queue.size()) return;

  // Phase 2 (EASY): reservation for the blocked head job.
  const QueuedJob& blocked = ordered_queue[head];
  const auto need = static_cast<std::size_t>(blocked.procs);
  if (scratch.vms.size() < need) {
    // The existing fleet can never host the head job — its start hinges on
    // future provisioning, for which no reservation can be computed.
    // Backfilling around an unbounded reservation could starve the head,
    // so serve nothing past it.
    return;
  }
  std::vector<SimTime>& times = scratch.times;
  times.clear();
  times.reserve(scratch.vms.size());
  for (const VmAvail& vm : scratch.vms) times.push_back(std::max(vm.available_at, now));
  std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(need) - 1,
                   times.end());
  const SimTime shadow = times[need - 1];  // earliest instant `need` VMs are free
  // VMs free by the shadow time beyond the head's need may be consumed by
  // backfilled jobs that run past the reservation.
  std::size_t free_at_shadow = 0;
  for (const VmAvail& vm : scratch.vms)
    if (std::max(vm.available_at, now) <= shadow) ++free_at_shadow;
  PSCHED_ASSERT(free_at_shadow >= need);
  std::size_t extra = free_at_shadow - need;

  for (std::size_t i = head + 1; i < ordered_queue.size(); ++i) {
    if (idle.empty()) break;
    const QueuedJob& job = ordered_queue[i];
    const auto width = static_cast<std::size_t>(job.procs);
    if (idle.size() < width) continue;
    const SimTime finish = now + job.predicted_runtime;
    const bool fits_window = finish <= shadow;
    if (!fits_window) {
      if (width > extra) continue;
      extra -= width;
    }
    AllocationPlan::Start start = take_vms(idle, scratch, job.procs, job.predicted_runtime,
                                           now, finish, vm_selection, billing_quantum, out);
    start.queue_index = i;
    out.starts.push_back(start);
  }
}

std::vector<PlannedStart> plan_allocation(SimTime now,
                                          std::span<const QueuedJob> ordered_queue,
                                          std::vector<VmAvail> vms,
                                          const VmSelectionPolicy& vm_selection,
                                          AllocationMode mode,
                                          SimDuration billing_quantum) {
  AllocationPlan flat;
  AllocationScratch scratch;
  plan_allocation_into(now, ordered_queue, vms, vm_selection, mode, billing_quantum,
                       flat, scratch);
  std::vector<PlannedStart> plan;
  plan.reserve(flat.starts.size());
  for (const AllocationPlan::Start& start : flat.starts) {
    const std::span<const VmId> ids = flat.vms_of(start);
    plan.push_back(PlannedStart{start.queue_index, {ids.begin(), ids.end()}});
  }
  return plan;
}

}  // namespace psched::policy
