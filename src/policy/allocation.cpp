#include "policy/allocation.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace psched::policy {

namespace {

/// Pick `count` VMs from the idle pool in the VM-selection policy's
/// preference order, remove them from the pool, and mark them busy in
/// `vms` until `until`.
std::vector<VmId> take_vms(std::vector<VmCandidate>& idle, std::vector<VmAvail>& vms,
                           int count, double predicted_runtime, SimTime now,
                           SimTime until, const VmSelectionPolicy& vm_selection,
                           SimDuration billing_quantum) {
  vm_selection.order(idle, predicted_runtime, now, billing_quantum);
  std::vector<VmId> chosen;
  chosen.reserve(static_cast<std::size_t>(count));
  for (int p = 0; p < count; ++p) chosen.push_back(idle[static_cast<std::size_t>(p)].id);
  idle.erase(idle.begin(), idle.begin() + count);
  for (const VmId id : chosen) {
    const auto it = std::find_if(vms.begin(), vms.end(),
                                 [id](const VmAvail& vm) { return vm.id == id; });
    PSCHED_ASSERT(it != vms.end());
    it->available_at = until;
  }
  return chosen;
}

}  // namespace

std::vector<PlannedStart> plan_allocation(SimTime now,
                                          std::span<const QueuedJob> ordered_queue,
                                          std::vector<VmAvail> vms,
                                          const VmSelectionPolicy& vm_selection,
                                          AllocationMode mode,
                                          SimDuration billing_quantum) {
  std::vector<PlannedStart> plan;

  std::vector<VmCandidate> idle;
  for (const VmAvail& vm : vms)
    if (vm.available_at <= now) idle.push_back({vm.id, vm.lease_time});

  // Phase 1 (both modes): serve from the head while jobs fit.
  std::size_t head = ordered_queue.size();  // first unserved position
  for (std::size_t i = 0; i < ordered_queue.size(); ++i) {
    const QueuedJob& job = ordered_queue[i];
    if (idle.size() < static_cast<std::size_t>(job.procs)) {
      head = i;
      break;
    }
    plan.push_back(PlannedStart{
        i, take_vms(idle, vms, job.procs, job.predicted_runtime, now,
                    now + job.predicted_runtime, vm_selection, billing_quantum)});
  }
  if (mode == AllocationMode::kHeadOfLine || head >= ordered_queue.size()) return plan;

  // Phase 2 (EASY): reservation for the blocked head job.
  const QueuedJob& blocked = ordered_queue[head];
  const auto need = static_cast<std::size_t>(blocked.procs);
  if (vms.size() < need) {
    // The existing fleet can never host the head job — its start hinges on
    // future provisioning, for which no reservation can be computed.
    // Backfilling around an unbounded reservation could starve the head,
    // so serve nothing past it.
    return plan;
  }
  std::vector<SimTime> times;
  times.reserve(vms.size());
  for (const VmAvail& vm : vms) times.push_back(std::max(vm.available_at, now));
  std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(need) - 1,
                   times.end());
  const SimTime shadow = times[need - 1];  // earliest instant `need` VMs are free
  // VMs free by the shadow time beyond the head's need may be consumed by
  // backfilled jobs that run past the reservation.
  std::size_t free_at_shadow = 0;
  for (const VmAvail& vm : vms)
    if (std::max(vm.available_at, now) <= shadow) ++free_at_shadow;
  PSCHED_ASSERT(free_at_shadow >= need);
  std::size_t extra = free_at_shadow - need;

  for (std::size_t i = head + 1; i < ordered_queue.size(); ++i) {
    if (idle.empty()) break;
    const QueuedJob& job = ordered_queue[i];
    const auto width = static_cast<std::size_t>(job.procs);
    if (idle.size() < width) continue;
    const SimTime finish = now + job.predicted_runtime;
    const bool fits_window = finish <= shadow;
    if (!fits_window) {
      if (width > extra) continue;
      extra -= width;
    }
    plan.push_back(PlannedStart{
        i, take_vms(idle, vms, job.procs, job.predicted_runtime, now, finish,
                    vm_selection, billing_quantum)});
  }
  return plan;
}

}  // namespace psched::policy
