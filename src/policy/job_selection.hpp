#pragma once
// The four job-selection policies (paper §3.1, after Tang et al.): each
// assigns a priority to every waiting job; the queue is served in
// descending-priority order, strictly from the head (no backfilling — the
// paper defers backfilling to future work).
//
// Notation: qi = wait time, ti = (predicted) runtime, ni = processors.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "policy/context.hpp"

namespace psched::policy {

class JobSelectionPolicy {
 public:
  virtual ~JobSelectionPolicy() = default;

  /// Higher priority = served earlier. Ties broken by submit order.
  [[nodiscard]] virtual double priority(const QueuedJob& job, SimTime now) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// FCFS (baseline): pi = qi.
class FcfsSelection final : public JobSelectionPolicy {
 public:
  [[nodiscard]] double priority(const QueuedJob& job, SimTime now) const override;
  [[nodiscard]] std::string name() const override { return "FCFS"; }
};

/// LXF (Largest-slowdown-First): pi = (qi + ti) / ti.
class LxfSelection final : public JobSelectionPolicy {
 public:
  [[nodiscard]] double priority(const QueuedJob& job, SimTime now) const override;
  [[nodiscard]] std::string name() const override { return "LXF"; }
};

/// WFP3: pi = (qi / ti)^3 * ni — favors wide jobs, cubes the slowdown term.
class Wfp3Selection final : public JobSelectionPolicy {
 public:
  [[nodiscard]] double priority(const QueuedJob& job, SimTime now) const override;
  [[nodiscard]] std::string name() const override { return "WFP3"; }
};

/// UNICEF: pi = qi / (log2(ni) * ti) — fast turnaround for small/short jobs.
/// log2(ni) is clamped below at 1 (serial jobs would otherwise divide by 0;
/// documented deviation, see DESIGN.md).
class UnicefSelection final : public JobSelectionPolicy {
 public:
  [[nodiscard]] double priority(const QueuedJob& job, SimTime now) const override;
  [[nodiscard]] std::string name() const override { return "UNICEF"; }
};

/// Sorts `queue` in service order for the given policy: descending priority,
/// ties by (submit, id). In-place, stable with respect to identical jobs.
void order_queue(std::vector<QueuedJob>& queue, const JobSelectionPolicy& policy,
                 SimTime now);

/// Reusable working state for the scratch-taking order_queue overload: the
/// priority-keyed index array and the reorder buffer. Contents are
/// meaningless between calls; reuse only keeps vector capacity warm.
struct OrderScratch {
  std::vector<std::pair<double, std::size_t>> keyed;
  std::vector<QueuedJob> reordered;
};

/// Allocation-free order_queue for the online simulator's decision loop
/// (identical resulting order; see DESIGN.md §11).
void order_queue(std::vector<QueuedJob>& queue, const JobSelectionPolicy& policy,
                 SimTime now, OrderScratch& scratch);

/// Factory by name ("FCFS", "LXF", "WFP3", "UNICEF"); throws on unknown.
[[nodiscard]] std::unique_ptr<JobSelectionPolicy> make_job_selection(const std::string& name);

/// All four, in the paper's order.
[[nodiscard]] std::vector<std::unique_ptr<JobSelectionPolicy>> all_job_selection();

}  // namespace psched::policy
