#pragma once
// The five resource-provisioning policies of the portfolio (paper §3.1).
// Each returns how many *new* VMs to lease right now; the engine caps the
// answer at the provider's headroom.

#include <memory>
#include <string>

#include "policy/context.hpp"

namespace psched::policy {

class ProvisioningPolicy {
 public:
  virtual ~ProvisioningPolicy() = default;
  [[nodiscard]] virtual std::size_t vms_to_lease(const SchedContext& ctx) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Earliest future instant at which this policy's answer could change if
  /// no job arrives/finishes and no VM changes state — i.e. purely because
  /// waiting times grow. kTimeNever for wait-time-independent policies.
  /// The online simulator uses this to fast-forward idle stretches exactly.
  [[nodiscard]] virtual SimTime next_change(const SchedContext& /*ctx*/) const {
    return kTimeNever;
  }
};

/// ODA (On-Demand All, the baseline): lease enough VMs for *every* queued
/// job to start — total queued processors minus already-available capacity.
class OnDemandAll final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "ODA"; }
};

/// ODB (On-Demand Balance): keep the fleet size equal to the total
/// processors required by the queue; busy VMs count toward the balance, so
/// short jobs finishing soon absorb queued work without new leases
/// (DawningCloud-style).
class OnDemandBalance final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "ODB"; }
};

/// ODE (On-Demand ExecTime): size the fleet to pack the queue's predicted
/// work into one charged hour: target = ceil(sum(procs * runtime) / 3600).
/// Deviation from the paper (see DESIGN.md): a starvation guard raises the
/// target to the widest queued job's size once that job has waited more
/// than an hour, otherwise a wide job can never start on a small fleet.
class OnDemandExecTime final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "ODE"; }
  [[nodiscard]] SimTime next_change(const SchedContext& ctx) const override;

  static constexpr double kStarvationWait = 3600.0;  ///< seconds
};

/// ODM (On-Demand Maximum): make the widest queued job startable:
/// lease max_i(procs_i) minus already-available capacity.
class OnDemandMaximum final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "ODM"; }
};

/// ODX (On-Demand XFactor): lease for every job whose bounded slowdown
/// (wait + max(rt,10)) / max(rt,10) exceeds a threshold of 2.
class OnDemandXFactor final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "ODX"; }
  [[nodiscard]] SimTime next_change(const SchedContext& ctx) const override;

  static constexpr double kThreshold = 2.0;
  static constexpr double kBound = 10.0;  ///< bounded-slowdown runtime floor
};

/// Factory by name ("ODA", "ODB", "ODE", "ODM", "ODX"); throws
/// std::invalid_argument on unknown names.
[[nodiscard]] std::unique_ptr<ProvisioningPolicy> make_provisioning(const std::string& name);

/// All five, in the paper's order.
[[nodiscard]] std::vector<std::unique_ptr<ProvisioningPolicy>> all_provisioning();

}  // namespace psched::policy
