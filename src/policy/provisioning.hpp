#pragma once
// The five resource-provisioning policies of the portfolio (paper §3.1).
// Each returns how many *new* VMs to lease right now; the engine caps the
// answer at the provider's headroom.

#include <memory>
#include <string>
#include <vector>

#include "cloud/pricing.hpp"
#include "policy/context.hpp"

namespace psched::policy {

class ProvisioningPolicy {
 public:
  virtual ~ProvisioningPolicy() = default;
  [[nodiscard]] virtual std::size_t vms_to_lease(const SchedContext& ctx) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Earliest future instant at which this policy's answer could change if
  /// no job arrives/finishes and no VM changes state — i.e. purely because
  /// waiting times grow. kTimeNever for wait-time-independent policies.
  /// The online simulator uses this to fast-forward idle stretches exactly.
  [[nodiscard]] virtual SimTime next_change(const SchedContext& /*ctx*/) const {
    return kTimeNever;
  }

  /// Tier-aware provisioning (DESIGN.md §12): split this tick's lease
  /// decision into per-family/per-tier requests, replacing the contents of
  /// `out`. The default maps vms_to_lease to the paper's behavior —
  /// everything on-demand in family 0 — so the five paper policies need no
  /// override. Tier-aware overrides must fall back to that default when
  /// `ctx.pricing` is null (pricing off).
  virtual void lease_plan(const SchedContext& ctx,
                          std::vector<cloud::LeaseRequest>& out) const;
};

/// ODA (On-Demand All, the baseline): lease enough VMs for *every* queued
/// job to start — total queued processors minus already-available capacity.
class OnDemandAll final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "ODA"; }
};

/// ODB (On-Demand Balance): keep the fleet size equal to the total
/// processors required by the queue; busy VMs count toward the balance, so
/// short jobs finishing soon absorb queued work without new leases
/// (DawningCloud-style).
class OnDemandBalance final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "ODB"; }
};

/// ODE (On-Demand ExecTime): size the fleet to pack the queue's predicted
/// work into one charged hour: target = ceil(sum(procs * runtime) / 3600).
/// Deviation from the paper (see DESIGN.md): a starvation guard raises the
/// target to the widest queued job's size once that job has waited more
/// than an hour, otherwise a wide job can never start on a small fleet.
class OnDemandExecTime final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "ODE"; }
  [[nodiscard]] SimTime next_change(const SchedContext& ctx) const override;

  static constexpr double kStarvationWait = 3600.0;  ///< seconds
};

/// ODM (On-Demand Maximum): make the widest queued job startable:
/// lease max_i(procs_i) minus already-available capacity.
class OnDemandMaximum final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "ODM"; }
};

/// ODX (On-Demand XFactor): lease for every job whose bounded slowdown
/// (wait + max(rt,10)) / max(rt,10) exceeds a threshold of 2.
class OnDemandXFactor final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "ODX"; }
  [[nodiscard]] SimTime next_change(const SchedContext& ctx) const override;

  static constexpr double kThreshold = 2.0;
  static constexpr double kBound = 10.0;  ///< bounded-slowdown runtime floor
};

// --- Tier-aware provisioning (pricing on; DESIGN.md §12) -------------------
// Each of these sizes the fleet with ODA's deficit and spends the decision
// across purchase tiers/families. With ctx.pricing null they all degrade to
// plain ODA, so they are only worth adding to a portfolio when pricing is on
// (Portfolio::pricing_portfolio does exactly that).

/// CPF (Cheapest-Feasible): reserved commitment headroom first (zero
/// marginal cost), then the remainder on the cheapest open option — spot
/// when the market is open and discounted, else on-demand — spilling across
/// families from cheapest to priciest as family caps bind.
class CheapestFeasible final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "CPF"; }
  void lease_plan(const SchedContext& ctx,
                  std::vector<cloud::LeaseRequest>& out) const override;
};

/// SPT (Spot-First with on-demand fallback): fill the whole deficit from
/// the spot market when it is open; fall back to on-demand (cheapest
/// family) when it is not.
class SpotFirst final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "SPT"; }
  void lease_plan(const SchedContext& ctx,
                  std::vector<cloud::LeaseRequest>& out) const override;
};

/// RSB (Reserved-Baseline + Spot-Burst): keep the pre-paid reserved
/// commitment fully used as the baseline, burst the remainder to spot when
/// the market is open (else on-demand).
class ReservedBaseline final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "RSB"; }
  void lease_plan(const SchedContext& ctx,
                  std::vector<cloud::LeaseRequest>& out) const override;
};

/// PRT (Price-Threshold deferral): lease on-demand only while the market
/// multiplier is at or below 1.0; in an expensive market defer leasing
/// entirely — unless some queued job has starved past an hour, which
/// overrides the deferral (liveness guard, mirroring ODE's).
class PriceThreshold final : public ProvisioningPolicy {
 public:
  [[nodiscard]] std::size_t vms_to_lease(const SchedContext& ctx) const override;
  [[nodiscard]] std::string name() const override { return "PRT"; }
  [[nodiscard]] SimTime next_change(const SchedContext& ctx) const override;
  void lease_plan(const SchedContext& ctx,
                  std::vector<cloud::LeaseRequest>& out) const override;

  static constexpr double kMultiplierThreshold = 1.0;
  static constexpr double kStarvationWait = 3600.0;  ///< seconds
};

/// Factory by name ("ODA", "ODB", "ODE", "ODM", "ODX", and the tier-aware
/// "CPF", "SPT", "RSB", "PRT"); throws std::invalid_argument on unknown
/// names.
[[nodiscard]] std::unique_ptr<ProvisioningPolicy> make_provisioning(const std::string& name);

/// All five, in the paper's order.
[[nodiscard]] std::vector<std::unique_ptr<ProvisioningPolicy>> all_provisioning();

/// The four tier-aware pricing policies, in doc order (CPF, SPT, RSB, PRT).
[[nodiscard]] std::vector<std::unique_ptr<ProvisioningPolicy>> pricing_provisioning();

}  // namespace psched::policy
