#pragma once
// The allocation step shared by the outer engine and the online simulator:
// given the policy-ordered queue and the (predicted) availability of every
// leased VM, decide which jobs start *now* and on which VMs.
//
// Two modes:
//  * kHeadOfLine — the paper's: serve strictly from the head, stop at the
//    first job that does not fit.
//  * kEasyBackfill — EASY backfilling (Lifka '95), the extension the paper
//    defers to future work: the blocked head job gets a reservation at the
//    earliest instant enough VMs are (predictedly) available; later jobs
//    may start immediately iff they fit the idle VMs and either finish by
//    that reservation or consume only VMs the head will not need.
//
// Everything here sees *predicted* completion times only, preserving the
// scheduler's information constraints.

#include <span>
#include <vector>

#include "policy/vm_selection.hpp"

namespace psched::policy {

enum class AllocationMode {
  kHeadOfLine,
  kEasyBackfill,
};

/// Availability view of one leased VM at planning time.
struct VmAvail {
  VmId id = kInvalidVm;
  SimTime lease_time = 0.0;    ///< billing clock zero (for VM selection)
  SimTime available_at = 0.0;  ///< <= now: idle; otherwise predicted free time
};

/// One planned start: queue position (into the ordered queue) + the VMs.
struct PlannedStart {
  std::size_t queue_index = 0;
  std::vector<VmId> vms;
};

/// Compute the starts for this scheduling decision. `ordered_queue` must
/// already be in service order (see order_queue). Pure function: does not
/// mutate external state; `vms` is taken by value as scratch.
[[nodiscard]] std::vector<PlannedStart> plan_allocation(
    SimTime now, std::span<const QueuedJob> ordered_queue, std::vector<VmAvail> vms,
    const VmSelectionPolicy& vm_selection, AllocationMode mode,
    SimDuration billing_quantum = kSecondsPerHour);

}  // namespace psched::policy
