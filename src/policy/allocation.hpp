#pragma once
// The allocation step shared by the outer engine and the online simulator:
// given the policy-ordered queue and the (predicted) availability of every
// leased VM, decide which jobs start *now* and on which VMs.
//
// Two modes:
//  * kHeadOfLine — the paper's: serve strictly from the head, stop at the
//    first job that does not fit.
//  * kEasyBackfill — EASY backfilling (Lifka '95), the extension the paper
//    defers to future work: the blocked head job gets a reservation at the
//    earliest instant enough VMs are (predictedly) available; later jobs
//    may start immediately iff they fit the idle VMs and either finish by
//    that reservation or consume only VMs the head will not need.
//
// Everything here sees *predicted* completion times only, preserving the
// scheduler's information constraints.

#include <cstdint>
#include <span>
#include <vector>

#include "policy/vm_selection.hpp"

namespace psched::policy {

enum class AllocationMode {
  kHeadOfLine,
  kEasyBackfill,
};

/// Availability view of one leased VM at planning time.
struct VmAvail {
  VmId id = kInvalidVm;
  SimTime lease_time = 0.0;    ///< billing clock zero (for VM selection)
  SimTime available_at = 0.0;  ///< <= now: idle; otherwise predicted free time
};

/// One planned start: queue position (into the ordered queue) + the VMs.
struct PlannedStart {
  std::size_t queue_index = 0;
  std::vector<VmId> vms;
};

/// Allocation decisions in flat struct-of-arrays form: each start's chosen
/// VM ids occupy the contiguous range [vm_begin, vm_end) of `vm_ids`. The
/// hot caller (the online simulator) reuses one AllocationPlan across every
/// decision of every candidate simulation — two vectors that only grow, no
/// per-start allocations (PlannedStart's per-start vector is what made the
/// boxed form expensive; see DESIGN.md §11).
struct AllocationPlan {
  struct Start {
    std::size_t queue_index = 0;
    std::uint32_t vm_begin = 0;
    std::uint32_t vm_end = 0;
  };
  std::vector<Start> starts;
  std::vector<VmId> vm_ids;

  void clear() noexcept {
    starts.clear();
    vm_ids.clear();
  }
  [[nodiscard]] bool empty() const noexcept { return starts.empty(); }
  [[nodiscard]] std::span<const VmId> vms_of(const Start& start) const noexcept {
    return {vm_ids.data() + start.vm_begin, start.vm_end - start.vm_begin};
  }
};

/// Reusable working state for plan_allocation_into: the idle-candidate
/// pool, the EASY shadow-time scratch, the mutable VM working copy, and a
/// VmId -> working-copy-row map (replaces the per-chosen-VM linear search).
/// Plain scratch — contents are meaningless between calls; reuse across
/// calls only to keep vector capacity warm.
struct AllocationScratch {
  std::vector<VmCandidate> idle;
  std::vector<SimTime> times;
  std::vector<VmAvail> vms;            ///< working copy (mutated while planning)
  std::vector<std::uint32_t> vm_row;   ///< VmId -> row in `vms` (dense by id)
};

/// Compute the starts for this scheduling decision. `ordered_queue` must
/// already be in service order (see order_queue). Pure function: does not
/// mutate external state; `vms` is taken by value as scratch.
[[nodiscard]] std::vector<PlannedStart> plan_allocation(
    SimTime now, std::span<const QueuedJob> ordered_queue, std::vector<VmAvail> vms,
    const VmSelectionPolicy& vm_selection, AllocationMode mode,
    SimDuration billing_quantum = kSecondsPerHour);

/// Allocation-free variant of plan_allocation for the online simulator's
/// inner loop: identical decisions (same starts, same VMs, same order), but
/// the result lands in `out` and all working state lives in `scratch`, both
/// reused across calls. `vms` is read-only here (the mutable working copy
/// is scratch.vms).
void plan_allocation_into(SimTime now, std::span<const QueuedJob> ordered_queue,
                          std::span<const VmAvail> vms,
                          const VmSelectionPolicy& vm_selection, AllocationMode mode,
                          SimDuration billing_quantum, AllocationPlan& out,
                          AllocationScratch& scratch);

}  // namespace psched::policy
