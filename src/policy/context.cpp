#include "policy/context.hpp"

#include <algorithm>

namespace psched::policy {

std::size_t SchedContext::queued_procs() const noexcept {
  std::size_t total = 0;
  for (const QueuedJob& j : queue) total += static_cast<std::size_t>(j.procs);
  return total;
}

std::size_t SchedContext::max_queued_procs() const noexcept {
  std::size_t widest = 0;
  for (const QueuedJob& j : queue)
    widest = std::max(widest, static_cast<std::size_t>(j.procs));
  return widest;
}

}  // namespace psched::policy
