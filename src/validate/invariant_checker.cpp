#include "validate/invariant_checker.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "util/assert.hpp"

namespace psched::validate {

namespace {

/// Absolute slack for comparisons between independently accumulated floating
/// point sums (billing quanta, proc-seconds). The quantities compared are
/// exact multiples of the same inputs, so any real bug is off by at least one
/// quantum or one job — many orders of magnitude above this.
constexpr double kEps = 1e-6;

template <typename... Args>
std::string format(const char* fmt, Args... args) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return buf;
}

}  // namespace

InvariantChecker::InvariantChecker(ValidationConfig config,
                                   cloud::ProviderConfig provider,
                                   cloud::PricingConfig pricing)
    : config_(config), provider_(provider), pricing_config_(std::move(pricing)) {
  if (pricing_config_.enabled())
    pricing_model_ = std::make_unique<cloud::PricingModel>(pricing_config_);
}

void InvariantChecker::fail(const char* invariant, SimTime when, std::string detail) {
  ++violation_count_;
  if (config_.abort_on_violation)
    psched::detail::invariant_fail(invariant, detail.c_str());
  if (violations_.size() < config_.max_recorded_violations)
    violations_.push_back(Violation{invariant, std::move(detail), when});
}

// --- event loop --------------------------------------------------------------

void InvariantChecker::on_schedule(SimTime when, SimTime now, sim::EventId id) {
  if (!check(when >= now)) {
    fail("event.no-past-schedule", now,
         format("event scheduled at t=%.6f while clock reads t=%.6f", when, now) +
             " (id " + std::to_string(id) + ")");
  }
}

void InvariantChecker::on_dispatch(SimTime now, SimTime previous, sim::EventId id) {
  if (!check(now >= previous)) {
    fail("event.monotone-time", now,
         format("clock moved backwards: %.6f -> %.6f", previous, now) + " (event " +
             std::to_string(id) + ")");
  }
  last_dispatch_ = now;
}

// --- cloud provider -----------------------------------------------------------

void InvariantChecker::on_lease(const cloud::VmInstance& vm, std::size_t leased_count,
                                SimTime now) {
  if (!check(leased_count <= provider_.max_vms)) {
    fail("vm.cap", now,
         format("leased fleet of %.0f VMs exceeds the cap of %.0f",
                static_cast<double>(leased_count),
                static_cast<double>(provider_.max_vms)));
  }
  if (!check(vm.boot_complete >= vm.lease_time)) {
    fail("vm.boot-before-run", now,
         format("VM advertises boot_complete=%.3f before lease_time=%.3f",
                vm.boot_complete, vm.lease_time));
  }
  if (pricing_model_ != nullptr && vm.tier == cloud::PurchaseTier::kReserved) {
    ++reserved_live_vms_;
    if (!check(reserved_live_vms_ <= pricing_config_.reserved_count)) {
      fail("pricing.commitment", now,
           format("%.0f reserved leases live, commitment is %.0f",
                  static_cast<double>(reserved_live_vms_),
                  static_cast<double>(pricing_config_.reserved_count)));
    }
  }
  ++observed_leases_;
}

void InvariantChecker::on_finish_boot(const cloud::VmInstance& vm, SimTime now) {
  if (!check(now + kEps >= vm.boot_complete)) {
    fail("vm.boot-before-run", now,
         format("boot completed at t=%.3f, before the advertised boot_complete=%.3f",
                now, vm.boot_complete));
  }
}

void InvariantChecker::on_assign(const cloud::VmInstance& vm, JobId job, SimTime now) {
  if (!check(vm.state == cloud::VmState::kIdle)) {
    fail("vm.idle-before-assign", now,
         "job " + std::to_string(job) + " assigned to VM " + std::to_string(vm.id) +
             " which is not idle");
  }
  if (!check(now + kEps >= vm.boot_complete)) {
    fail("vm.boot-before-run", now,
         "job " + std::to_string(job) + " starts on VM " + std::to_string(vm.id) +
             format(" at t=%.3f, %.3f s before its boot completes", now,
                    vm.boot_complete - now));
  }
}

void InvariantChecker::on_unassign(const cloud::VmInstance& vm, SimTime now) {
  if (!check(vm.state == cloud::VmState::kIdle)) {
    fail("vm.idle-before-assign", now,
         "VM " + std::to_string(vm.id) + " not idle after unassign");
  }
}

void InvariantChecker::on_release(const cloud::VmInstance& vm,
                                  double charged_hours_delta, SimTime now) {
  const double expected =
      cloud::charged_hours_for(vm.lease_time, now, provider_.billing_quantum);
  if (!check(std::abs(charged_hours_delta - expected) <= kEps)) {
    fail("billing.ceil", now,
         "VM " + std::to_string(vm.id) +
             format(" charged %.6f h on release; ceil(lease/quantum) requires %.6f h",
                    charged_hours_delta, expected));
  }
  if (!check(charged_hours_delta >= -kEps)) {
    fail("billing.monotone", now,
         format("negative release charge %.6f h (total would shrink by %.6f)",
                charged_hours_delta, -charged_hours_delta));
  }
  charged_total_hours_ += charged_hours_delta;
  ++observed_releases_;
}

void InvariantChecker::on_boot_fail(const cloud::VmInstance& vm,
                                    double charged_hours_delta, SimTime now) {
  // A boot failure settles the lease like a release: started quanta are paid.
  const double expected =
      cloud::charged_hours_for(vm.lease_time, now, provider_.billing_quantum);
  if (!check(std::abs(charged_hours_delta - expected) <= kEps)) {
    fail("billing.ceil", now,
         "boot-failed VM " + std::to_string(vm.id) +
             format(" charged %.6f h; ceil(lease/quantum) requires %.6f h",
                    charged_hours_delta, expected));
  }
  charged_total_hours_ += charged_hours_delta;
  failed_charged_hours_ += charged_hours_delta;
  ++observed_boot_fails_;
}

void InvariantChecker::on_crash(const cloud::VmInstance& vm,
                                double charged_hours_delta, SimTime now) {
  // A crash terminates the lease mid-flight; the started quantum is still
  // paid (ceil billing), exactly as if the VM had been released here.
  const double expected =
      cloud::charged_hours_for(vm.lease_time, now, provider_.billing_quantum);
  if (!check(std::abs(charged_hours_delta - expected) <= kEps)) {
    fail("billing.ceil", now,
         "crashed VM " + std::to_string(vm.id) +
             format(" charged %.6f h; ceil(lease/quantum) requires %.6f h",
                    charged_hours_delta, expected));
  }
  charged_total_hours_ += charged_hours_delta;
  failed_charged_hours_ += charged_hours_delta;
  ++observed_crashes_;
}

void InvariantChecker::on_spot_warning(const cloud::VmInstance& vm, SimTime now) {
  if (!check(vm.tier == cloud::PurchaseTier::kSpot && vm.doomed)) {
    fail("pricing.revocation", now,
         "revocation warning for VM " + std::to_string(vm.id) +
             " which is not a doomed spot lease");
  }
  ++observed_spot_warnings_;
}

void InvariantChecker::on_spot_revoke(const cloud::VmInstance& vm,
                                      double charged_hours_delta, SimTime now) {
  // Only spot leases can be revoked, and the warning must already have
  // landed (the engine schedules warning before revocation, never after).
  if (!check(vm.tier == cloud::PurchaseTier::kSpot && vm.doomed)) {
    fail("pricing.revocation", now,
         "VM " + std::to_string(vm.id) + " revoked without being a doomed spot lease");
  }
  // A revocation settles the lease like a crash: started quanta are paid.
  const double expected =
      cloud::charged_hours_for(vm.lease_time, now, provider_.billing_quantum);
  if (!check(std::abs(charged_hours_delta - expected) <= kEps)) {
    fail("billing.ceil", now,
         "revoked VM " + std::to_string(vm.id) +
             format(" charged %.6f h; ceil(lease/quantum) requires %.6f h",
                    charged_hours_delta, expected));
  }
  charged_total_hours_ += charged_hours_delta;
  revoked_charged_hours_ += charged_hours_delta;
  ++observed_revokes_;
}

void InvariantChecker::on_price_settle(const cloud::VmInstance& vm,
                                       double cost_dollars, SimTime now) {
  if (pricing_model_ == nullptr) return;
  // Recompute the settlement from the checker's own model: same family,
  // tier, lease window, and billing quantum must price identically.
  const double expected = pricing_model_->lease_cost(
      vm.family, vm.tier, vm.lease_time, now, provider_.billing_quantum);
  if (!check(std::abs(cost_dollars - expected) <= kEps * std::max(1.0, expected))) {
    fail("pricing.cost", now,
         "VM " + std::to_string(vm.id) +
             format(" settled at $%.6f; independent recomputation gives $%.6f",
                    cost_dollars, expected));
  }
  switch (vm.tier) {
    case cloud::PurchaseTier::kOnDemand:
      observed_spend_on_demand_ += cost_dollars;
      break;
    case cloud::PurchaseTier::kSpot:
      observed_spend_spot_ += cost_dollars;
      break;
    case cloud::PurchaseTier::kReserved:
      if (check(reserved_live_vms_ > 0)) {
        --reserved_live_vms_;
      } else {
        fail("pricing.commitment", now,
             "reserved VM " + std::to_string(vm.id) +
                 " settled with no reserved lease outstanding");
      }
      break;
  }
}

// --- engine ------------------------------------------------------------------

void InvariantChecker::on_job_started(JobId job, int procs, std::size_t vm_count,
                                      SimTime eligible, SimTime submit, SimTime now) {
  if (!check(static_cast<std::size_t>(procs) == vm_count)) {
    fail("job.width", now,
         "job " + std::to_string(job) +
             format(" needs %.0f VMs but was started on %.0f",
                    static_cast<double>(procs), static_cast<double>(vm_count)));
  }
  if (!check(now + kEps >= eligible && eligible + kEps >= submit)) {
    fail("job.start-after-eligible", now,
         "job " + std::to_string(job) +
             format(" started at t=%.3f with eligible=%.3f and submit=%.3f", now,
                    eligible, submit));
  }
}

void InvariantChecker::on_job_finished(const metrics::JobRecord& record, SimTime now) {
  if (!check(record.runtime >= 0.0 && record.procs >= 1 &&
             record.finish + kEps >= record.start)) {
    fail("metrics.consistent", now,
         "job " + std::to_string(record.id) +
             format(" finished with runtime=%.3f, start-to-finish=%.3f",
                    record.runtime, record.finish - record.start));
  }
  expected_rj_ += static_cast<double>(record.procs) * record.runtime;
  ++finished_jobs_;
}

void InvariantChecker::on_job_killed(JobId /*job*/, SimTime /*now*/) {
  ++observed_kills_;
}

void InvariantChecker::on_tick_end(const JobCensus& census, std::size_t leased_vms,
                                   SimTime now) {
  const std::size_t accounted = census.queued + census.running + census.finished +
                                census.blocked + census.killed;
  if (!check(census.submitted == accounted)) {
    fail("job.conservation", now,
         format("submitted=%.0f but queued+running+finished+blocked+killed=%.0f",
                static_cast<double>(census.submitted),
                static_cast<double>(accounted)));
  }
  if (!check(leased_vms <= provider_.max_vms)) {
    fail("vm.cap", now,
         format("tick ends with %.0f leased VMs, cap is %.0f",
                static_cast<double>(leased_vms),
                static_cast<double>(provider_.max_vms)));
  }
}

void InvariantChecker::on_run_end(const metrics::RunMetrics& metrics,
                                  const sim::Simulator& sim,
                                  double provider_charged_hours) {
  // Event conservation: every scheduled event was dispatched or cancelled
  // (the queue must have drained for the run to end).
  const sim::EventQueue& q = sim.queue();
  const std::uint64_t accounted =
      sim.events_dispatched() + q.total_cancelled() + q.size();
  if (!check(q.total_scheduled() == accounted)) {
    fail("event.conservation", sim.now(),
         format("scheduled %.0f events but dispatched+cancelled+pending=%.0f",
                static_cast<double>(q.total_scheduled()),
                static_cast<double>(accounted)));
  }

  // Utility inputs: non-negative work and cost, BSD has a floor of 1.
  if (!check(metrics.rj_proc_seconds >= 0.0 && metrics.rv_charged_seconds >= 0.0 &&
             metrics.avg_bounded_slowdown >= 1.0 - kEps &&
             std::isfinite(metrics.avg_bounded_slowdown))) {
    fail("metrics.consistent", sim.now(),
         format("degenerate utility inputs: RJ=%.3f, RV=%.3f, BSD=%.6f",
                metrics.rj_proc_seconds, metrics.rv_charged_seconds,
                metrics.avg_bounded_slowdown));
  }

  // RJ must equal the checker's independent sum over finished jobs.
  if (!check(std::abs(metrics.rj_proc_seconds - expected_rj_) <=
             kEps * std::max(1.0, expected_rj_))) {
    fail("metrics.consistent", sim.now(),
         format("collector RJ=%.6f disagrees with the sum over finished jobs %.6f",
                metrics.rj_proc_seconds, expected_rj_));
  }
  if (!check(metrics.jobs == finished_jobs_)) {
    fail("metrics.consistent", sim.now(),
         format("collector finished %.0f jobs, checker observed %.0f",
                static_cast<double>(metrics.jobs),
                static_cast<double>(finished_jobs_)));
  }

  // RV must equal the provider's released charges, which in turn must match
  // the checker's own per-release accumulation.
  const double rv_hours = metrics.rv_charged_seconds / kSecondsPerHour;
  if (!check(std::abs(rv_hours - provider_charged_hours) <= kEps &&
             std::abs(provider_charged_hours - charged_total_hours_) <= kEps)) {
    fail("metrics.consistent", sim.now(),
         format("RV=%.6f h vs provider=%.6f h vs checker total=%.6f h", rv_hours,
                provider_charged_hours, charged_total_hours_));
  }

  // Failure accounting. Silent (zero checks) for failure-free runs so their
  // check count stays exactly what it was before the failure layer existed.
  const metrics::FailureStats& fs = metrics.failures;
  const bool failure_activity = fs.any() || observed_boot_fails_ > 0 ||
                                observed_crashes_ > 0 || observed_kills_ > 0;
  if (failure_activity) {
    if (!check(fs.boot_failures == observed_boot_fails_ &&
               fs.vm_crashes == observed_crashes_ &&
               fs.job_kills == observed_kills_)) {
      fail("failure.consistent", sim.now(),
           format("metrics report %.0f boot-fails / %.0f crashes / %.0f kills; "
                  "checker observed %.0f / %.0f / %.0f",
                  static_cast<double>(fs.boot_failures),
                  static_cast<double>(fs.vm_crashes),
                  static_cast<double>(fs.job_kills),
                  static_cast<double>(observed_boot_fails_),
                  static_cast<double>(observed_crashes_),
                  static_cast<double>(observed_kills_)));
    }
    // Wasted spend: the engine's per-termination accumulation must equal the
    // checker's own sum over crash/boot-fail charges.
    if (!check(std::abs(fs.failed_vm_charged_seconds -
                        failed_charged_hours_ * kSecondsPerHour) <=
               kEps * std::max(1.0, failed_charged_hours_ * kSecondsPerHour))) {
      fail("failure.consistent", sim.now(),
           format("paid-but-wasted %.6f s disagrees with the checker's %.6f s",
                  fs.failed_vm_charged_seconds,
                  failed_charged_hours_ * kSecondsPerHour));
    }
    // Lease accounting: every lease settled by exactly one release, crash,
    // boot failure, or spot revocation (the engine asserts zero leased VMs
    // at run end). Revocations are zero with pricing off.
    const std::size_t settled = observed_releases_ + observed_crashes_ +
                                observed_boot_fails_ + observed_revokes_;
    if (!check(observed_leases_ == settled)) {
      fail("failure.consistent", sim.now(),
           format("%.0f leases but %.0f settlements "
                  "(releases+crashes+boot-fails+revocations)",
                  static_cast<double>(observed_leases_),
                  static_cast<double>(settled)));
    }
  }

  // Pricing accounting. Silent (zero checks) for pricing-free runs so their
  // check count stays exactly what it was before the pricing layer existed.
  const metrics::PricingStats& ps = metrics.pricing;
  const bool pricing_activity = ps.any() || observed_spot_warnings_ > 0 ||
                                observed_revokes_ > 0 ||
                                observed_spend_on_demand_ > 0.0 ||
                                observed_spend_spot_ > 0.0;
  if (pricing_activity) {
    if (!check(ps.spot_warnings == observed_spot_warnings_ &&
               ps.spot_revocations == observed_revokes_)) {
      fail("pricing.consistent", sim.now(),
           format("metrics report %.0f warnings / %.0f revocations; checker "
                  "observed %.0f / %.0f",
                  static_cast<double>(ps.spot_warnings),
                  static_cast<double>(ps.spot_revocations),
                  static_cast<double>(observed_spot_warnings_),
                  static_cast<double>(observed_revokes_)));
    }
    const double spend_eps = kEps * std::max(1.0, ps.total_spend_dollars());
    if (!check(std::abs(ps.spend_on_demand_dollars - observed_spend_on_demand_) <=
                   spend_eps &&
               std::abs(ps.spend_spot_dollars - observed_spend_spot_) <= spend_eps)) {
      fail("pricing.consistent", sim.now(),
           format("metrics report $%.6f on-demand / $%.6f spot; checker "
                  "settlements sum to $%.6f / $%.6f",
                  ps.spend_on_demand_dollars, ps.spend_spot_dollars,
                  observed_spend_on_demand_, observed_spend_spot_));
    }
    if (!check(std::abs(ps.revoked_charged_seconds -
                        revoked_charged_hours_ * kSecondsPerHour) <=
               kEps * std::max(1.0, revoked_charged_hours_ * kSecondsPerHour))) {
      fail("pricing.consistent", sim.now(),
           format("revocation waste %.6f s disagrees with the checker's %.6f s",
                  ps.revoked_charged_seconds,
                  revoked_charged_hours_ * kSecondsPerHour));
    }
    // Settlement conservation again, under the pricing gate: a pricing-on
    // failure-off run (revocations on idle leases only) would otherwise
    // skip it entirely.
    const std::size_t settled_with_revokes =
        observed_releases_ + observed_crashes_ + observed_boot_fails_ +
        observed_revokes_;
    if (!check(observed_leases_ == settled_with_revokes)) {
      fail("pricing.consistent", sim.now(),
           format("%.0f leases but %.0f settlements "
                  "(releases+crashes+boot-fails+revocations)",
                  static_cast<double>(observed_leases_),
                  static_cast<double>(settled_with_revokes)));
    }
    // Every reserved lease must have been settled back to the commitment.
    if (!check(reserved_live_vms_ == 0)) {
      fail("pricing.consistent", sim.now(),
           format("%.0f reserved leases never settled",
                  static_cast<double>(reserved_live_vms_)));
    }
  }
}

// --- multi-tenant service hooks ----------------------------------------------

void InvariantChecker::on_tenant_arbitration(
    const std::vector<TenantAllocation>& allocations, std::size_t global_cap,
    SimTime now) {
  std::size_t total_alloc = 0;
  std::size_t total_leased = 0;
  double total_weight = 0.0;
  for (const TenantAllocation& a : allocations) {
    total_alloc += a.allocated_vms;
    total_leased += a.leased_vms;
    total_weight += a.weight;
  }
  if (!check(total_alloc <= global_cap)) {
    fail("tenant.global-cap", now,
         format("arbiter allocated %.0f VMs against a global cap of %.0f",
                static_cast<double>(total_alloc),
                static_cast<double>(global_cap)));
  }
  if (!check(total_leased <= global_cap)) {
    fail("tenant.global-cap", now,
         format("%.0f VMs leased across tenants against a global cap of %.0f",
                static_cast<double>(total_leased),
                static_cast<double>(global_cap)));
  }
  for (const TenantAllocation& a : allocations) {
    if (!check(a.allocated_vms >= a.leased_vms)) {
      fail("tenant.global-cap", now,
           format("tenant %.0f allocated %.0f VMs, below its live fleet of "
                  "%.0f (allowances never evict)",
                  static_cast<double>(a.tenant),
                  static_cast<double>(a.allocated_vms),
                  static_cast<double>(a.leased_vms)));
    }
  }
  if (total_weight <= 0.0) return;
  // Weighted max-min fairness, with one VM of integer-rounding slack on each
  // side: an in-budget tenant with unmet queued demand must not sit more
  // than one VM below its quota share (cap * w_i / Σw) while any other
  // tenant holds more than one VM above its own share — unless the excess is
  // merely that tenant's live fleet, which the arbiter may never evict.
  for (const TenantAllocation& starved : allocations) {
    if (starved.over_budget) continue;
    if (starved.demand_vms <= starved.allocated_vms) continue;  // demand met
    const double quota =
        static_cast<double>(global_cap) * starved.weight / total_weight;
    if (static_cast<double>(starved.allocated_vms + 1) >= quota) continue;
    for (const TenantAllocation& other : allocations) {
      if (other.tenant == starved.tenant) continue;
      const double other_quota =
          static_cast<double>(global_cap) * other.weight / total_weight;
      const double bound =
          std::max(static_cast<double>(other.leased_vms), other_quota + 1.0);
      if (!check(static_cast<double>(other.allocated_vms) <= bound)) {
        fail("tenant.fairness", now,
             format("tenant %.0f allocated %.0f VMs (quota %.2f) while tenant "
                    "%.0f sits at %.0f of quota %.2f with unmet demand %.0f",
                    static_cast<double>(other.tenant),
                    static_cast<double>(other.allocated_vms), other_quota,
                    static_cast<double>(starved.tenant),
                    static_cast<double>(starved.allocated_vms), quota,
                    static_cast<double>(starved.demand_vms)));
      }
    }
  }
}

void InvariantChecker::on_tenant_run_end(std::size_t tenant, std::size_t submitted,
                                         std::size_t finished, std::size_t killed,
                                         SimTime now) {
  if (!check(submitted == finished + killed)) {
    fail("tenant.conservation", now,
         format("tenant %.0f submitted %.0f jobs but finished %.0f + "
                "killed-final %.0f",
                static_cast<double>(tenant), static_cast<double>(submitted),
                static_cast<double>(finished), static_cast<double>(killed)));
  }
}

}  // namespace psched::validate
