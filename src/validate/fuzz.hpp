#pragma once
// Property-based fuzz harness: run randomized workloads through full engine
// experiments with the InvariantChecker attached (record mode) and report
// the first violating seed, after shrinking its trace to a smaller
// still-violating prefix.
//
// Each seed deterministically derives one scenario — archetype, horizon,
// provider shape (small caps so the cap invariant is exercised, nonzero
// boot delays, three billing quanta), release rule, allocation mode,
// predictor, and policy (a random constituent triple; every fifth seed runs
// the full portfolio scheduler instead). Seed i of a run is
// `base_seed + i`, so a failure report like "seed 17" reproduces with
// `psched_fuzz --seeds 1 --base-seed 17`.
//
// The harness doubles as the validation subsystem's self-test: with
// FuzzConfig::inject_fault set, every scenario's provider misbehaves in a
// known way and the harness must *fail* — the suite asserts that each
// seeded fault is caught (see tests/validate/fuzz_harness_test.cpp).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "validate/invariant_checker.hpp"

namespace psched::validate {

struct FuzzConfig {
  std::uint64_t base_seed = 1;     ///< scenario i uses seed base_seed + i
  std::size_t num_seeds = 50;
  /// Wall-clock budget; 0 = unlimited. When the cap is hit the report is
  /// marked timed_out and seeds_run tells how far the run got — a capped
  /// clean run is still a pass over the seeds it covered.
  double time_cap_seconds = 0.0;
  /// Self-test mutation applied to every scenario's provider.
  FaultInjection inject_fault = FaultInjection::kNone;
  bool shrink = true;              ///< shrink the first failing trace
  std::size_t max_jobs = 160;      ///< per-scenario job cap (keeps seeds fast)
  /// Also fuzz the failure model: every third seed draws a small
  /// FailureConfig (boot-fail probability, VM MTBF, API outage cadence) so
  /// the resilience paths — retry/backoff, resubmission, crash billing —
  /// run under the invariant checker too. The draws happen after every
  /// scenario-shape draw, so disabling this reproduces the exact pre-failure
  /// scenarios.
  bool fuzz_failures = true;
  /// Also fuzz the pricing model: every third seed (offset from the failure
  /// seeds) draws a small PricingConfig — VM-family mixes, a spot market
  /// with revocations, price schedules/walks, reserved commitments — so the
  /// tier-aware provisioning paths and pricing invariants (pricing.cost,
  /// pricing.commitment, pricing.revocation) run under the checker too.
  /// Draws happen after every scenario-shape and failure draw, so disabling
  /// this reproduces the exact pre-pricing scenarios.
  bool fuzz_pricing = true;
  /// Also fuzz multi-tenant service mode: every fourth seed draws a tenant
  /// mix (2-4 tenants, weights, optional VM-hour budgets, arbitration
  /// cadence), shards the scenario's workload round-robin across the
  /// tenants, and runs a MultiTenantExperiment so the arbitration-level
  /// invariants (tenant.global-cap, tenant.fairness, tenant.conservation)
  /// run under the checker too. Draws happen after every scenario-shape,
  /// failure, and pricing draw, so disabling this reproduces the exact
  /// pre-tenant scenarios. A tenant FaultInjection forces every seed
  /// multi-tenant regardless.
  bool fuzz_tenants = true;
  /// Also fuzz checkpoint/restore (DESIGN.md §14): every fifth seed (offset
  /// 3, single-tenant scenarios) re-runs its workload under checkpoint
  /// supervision with a drawn cadence, then once more resuming from the
  /// newest checkpoint, and asserts both runs' reports are byte-identical
  /// to the straight run's (violation "checkpoint.roundtrip" otherwise).
  /// Every third such seed additionally corrupts every checkpoint write
  /// (torn trailer or bit flip, drawn) with read-back verification off, and
  /// asserts the resume scan rejects every corrupt file and falls back to a
  /// fresh — still bit-identical — start. Draws happen after every other
  /// draw, so disabling this reproduces the exact pre-checkpoint scenarios.
  bool fuzz_checkpoints = true;
};

/// The first violating seed, with its (possibly shrunk) instance size and
/// the recorded violations.
struct FuzzFailure {
  std::uint64_t seed = 0;
  std::size_t jobs = 0;            ///< jobs in the shrunk failing instance
  std::size_t original_jobs = 0;   ///< jobs before shrinking
  std::string scenario;            ///< human-readable scenario description
  std::vector<Violation> violations;
};

struct FuzzReport {
  std::size_t seeds_requested = 0;
  std::size_t seeds_run = 0;
  std::uint64_t total_checks = 0;  ///< invariant checks across all seeds
  bool timed_out = false;          ///< time cap hit before all seeds ran
  std::optional<FuzzFailure> failure;
  [[nodiscard]] bool pass() const noexcept { return !failure.has_value(); }
};

/// Run the harness. Deterministic given the config (wall-clock cap aside).
[[nodiscard]] FuzzReport run_fuzz(const FuzzConfig& config);

}  // namespace psched::validate
