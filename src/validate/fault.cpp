#include "validate/fault.hpp"

namespace psched::validate {

const char* to_string(FaultInjection fault) noexcept {
  switch (fault) {
    case FaultInjection::kNone: return "none";
    case FaultInjection::kBillingOffByOne: return "billing-off-by-one";
    case FaultInjection::kSkipBootDelay: return "skip-boot-delay";
    case FaultInjection::kCapOvershoot: return "cap-overshoot";
    case FaultInjection::kCandidateThrow: return "candidate-throw";
    case FaultInjection::kTenantCapOvershoot: return "tenant-cap-overshoot";
    case FaultInjection::kTenantUnfairShare: return "tenant-unfair-share";
    case FaultInjection::kCheckpointTornWrite: return "checkpoint-torn-write";
    case FaultInjection::kCheckpointBitFlip: return "checkpoint-bit-flip";
  }
  return "unknown";
}

FaultInjection fault_from_string(const std::string& name, bool& ok) {
  ok = true;
  if (name.empty() || name == "none") return FaultInjection::kNone;
  if (name == "billing-off-by-one") return FaultInjection::kBillingOffByOne;
  if (name == "skip-boot-delay") return FaultInjection::kSkipBootDelay;
  if (name == "cap-overshoot") return FaultInjection::kCapOvershoot;
  if (name == "candidate-throw") return FaultInjection::kCandidateThrow;
  if (name == "tenant-cap-overshoot") return FaultInjection::kTenantCapOvershoot;
  if (name == "tenant-unfair-share") return FaultInjection::kTenantUnfairShare;
  if (name == "checkpoint-torn-write") return FaultInjection::kCheckpointTornWrite;
  if (name == "checkpoint-bit-flip") return FaultInjection::kCheckpointBitFlip;
  ok = false;
  return FaultInjection::kNone;
}

}  // namespace psched::validate
