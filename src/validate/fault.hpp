#pragma once
// Seeded-fault mutations for the validation subsystem's self-test mode.
//
// Each fault flips one known-bad behavior that a correct InvariantChecker
// must catch (tests/validate/*): the checker is only trustworthy if it
// demonstrably fires on the bug classes it claims to guard against —
// mutation testing for the safety net itself. The faults are implemented at
// their natural layer (cloud::CloudProvider), gated on this enum, and are
// never enabled outside validation runs.
//
// This header is dependency-free so the cloud layer can carry the fault
// switch in its config without depending on the rest of src/validate.

#include <string>

namespace psched::validate {

enum class FaultInjection {
  kNone,             ///< correct behavior (default)
  kBillingOffByOne,  ///< charge one billing quantum too few on VM release
  kSkipBootDelay,    ///< leased VMs are usable immediately (boot not awaited)
  kCapOvershoot,     ///< the provider grants one VM beyond max_vms
  kCandidateThrow,   ///< every online candidate simulation throws — the
                     ///< selector's graceful-degradation path must absorb
                     ///< it (quarantine + last-known-good), not abort
  kTenantCapOvershoot,  ///< the multi-tenant arbiter allocates one VM beyond
                        ///< the shared global cap (tenant.global-cap)
  kTenantUnfairShare,   ///< the arbiter hands the lowest-id tenant everything
                        ///< above the other tenants' floors (tenant.fairness)
  kCheckpointTornWrite,  ///< checkpoint writes bypass the atomic rename and
                         ///< leave a truncated file (checkpoint.roundtrip)
  kCheckpointBitFlip,    ///< one bit of every checkpoint flips before the
                         ///< (otherwise clean) write (checkpoint.roundtrip)
};

[[nodiscard]] const char* to_string(FaultInjection fault) noexcept;

/// Parse a CLI spelling ("none", "billing-off-by-one", "skip-boot-delay",
/// "cap-overshoot", "candidate-throw", "tenant-cap-overshoot",
/// "tenant-unfair-share", "checkpoint-torn-write", "checkpoint-bit-flip").
/// Sets ok=false and returns kNone on unknown input.
[[nodiscard]] FaultInjection fault_from_string(const std::string& name, bool& ok);

}  // namespace psched::validate
