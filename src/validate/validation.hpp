#pragma once
// Configuration of the runtime validation subsystem (see DESIGN.md,
// "Validation & testing"). The checks themselves live in
// validate/invariant_checker.hpp; this header is deliberately tiny so the
// engine config can embed it without pulling in the checker machinery.

#include <cstddef>

#include "validate/fault.hpp"

namespace psched::validate {

struct ValidationConfig {
  /// Master switch for the per-event InvariantChecker. Compiled in always;
  /// when false the engine keeps null observer pointers and every hook site
  /// is a single predictable branch (measured to be within noise of the
  /// pre-validation engine — see the bench_fig10 criterion in ISSUE/PR
  /// notes). CLI: --check-invariants.
  bool check_invariants = false;

  /// true (default): a violation aborts through util/assert.hpp's
  /// invariant_fail(), printing the simulated clock, event, and governing
  /// policy. false: violations are recorded on the checker (and surfaced in
  /// RunResult::invariant_violations) so harnesses — the fuzzer, the
  /// self-test suite — can observe them without dying.
  bool abort_on_violation = true;

  /// Self-test mutation mode (CLI: --inject-fault): deliberately break one
  /// known-bad behavior and let the test suite assert the checker fires.
  FaultInjection inject_fault = FaultInjection::kNone;

  /// Cap on recorded violations per run in record mode (a broken invariant
  /// tends to fire on every subsequent event; the first few carry all the
  /// signal).
  std::size_t max_recorded_violations = 64;
};

}  // namespace psched::validate
