#include "validate/differential.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace psched::validate {

std::vector<workload::Job> normalize_closed_instance(std::vector<workload::Job> jobs,
                                                     const engine::EngineConfig& config) {
  const double period = config.schedule_period;
  PSCHED_ASSERT(period > 0.0);
  for (workload::Job& job : jobs) {
    job.submit = 0.0;
    const double ticks = std::max(1.0, std::ceil(job.runtime / period));
    job.runtime = ticks * period;
    job.estimate = job.runtime;
    job.procs = std::clamp(job.procs, 1,
                           static_cast<int>(config.provider.max_vms));
    job.deps.clear();
  }
  // The trace constructor sorts by (submit, id); with submit pinned to 0 the
  // original id order is preserved.
  return jobs;
}

std::vector<workload::Job> closed_instance_from_generator(
    const workload::GeneratorConfig& generator, std::uint64_t seed,
    std::size_t max_jobs, const engine::EngineConfig& config) {
  const workload::TraceGenerator gen(generator);
  std::vector<workload::Job> jobs = gen.generate(seed).cleaned().jobs();
  if (jobs.size() > max_jobs) jobs.resize(max_jobs);
  return normalize_closed_instance(std::move(jobs), config);
}

DifferentialResult run_differential(const engine::EngineConfig& config,
                                    const std::vector<workload::Job>& closed_jobs,
                                    const policy::PolicyTriple& policy,
                                    DifferentialTolerance tolerance) {
  DifferentialResult result;
  result.policy = policy.name();

  // Ground truth: the outer engine, perfect predictions.
  const workload::Trace trace("differential-closed",
                              static_cast<int>(config.provider.max_vms), closed_jobs);
  const engine::ScenarioResult engine_run = engine::run_single_policy(
      config, trace, policy, engine::PredictorKind::kPerfect);
  result.actual = engine_run.run.metrics;

  // Prediction: the inner simulator from the identical empty-fleet start.
  core::OnlineSimConfig sconfig;
  sconfig.utility = config.utility;
  sconfig.slowdown_bound = config.slowdown_bound;
  sconfig.schedule_period = config.schedule_period;
  sconfig.release_window = config.schedule_period;
  sconfig.release_rule = config.release_rule;
  sconfig.allocation = config.allocation;
  sconfig.cost_model = core::InnerCostModel::kChargedHours;
  const core::OnlineSimulator sim(sconfig);

  std::vector<policy::QueuedJob> queue;
  queue.reserve(closed_jobs.size());
  for (const workload::Job& job : closed_jobs) {
    policy::QueuedJob q;
    q.id = job.id;
    q.submit = 0.0;
    q.procs = job.procs;
    q.predicted_runtime = job.runtime;
    queue.push_back(q);
  }
  cloud::CloudProfile profile;
  profile.now = 0.0;
  profile.max_vms = config.provider.max_vms;
  profile.boot_delay = config.provider.boot_delay;
  profile.billing_quantum = config.provider.billing_quantum;
  result.predicted = sim.simulate(queue, profile, policy);

  const double d_bsd =
      std::abs(result.predicted.avg_bounded_slowdown - result.actual.avg_bounded_slowdown);
  const double d_rj =
      std::abs(result.predicted.rj_proc_seconds - result.actual.rj_proc_seconds);
  const double d_rv =
      std::abs(result.predicted.rv_charged_seconds - result.actual.rv_charged_seconds);
  result.pass = d_bsd <= tolerance.bsd_abs && d_rj <= tolerance.seconds_abs &&
                d_rv <= tolerance.seconds_abs;
  if (!result.pass) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "BSD %.9f vs %.9f (|d|=%.3g), RJ %.6f vs %.6f (|d|=%.3g), "
                  "RV %.6f vs %.6f (|d|=%.3g)",
                  result.predicted.avg_bounded_slowdown,
                  result.actual.avg_bounded_slowdown, d_bsd,
                  result.predicted.rj_proc_seconds, result.actual.rj_proc_seconds, d_rj,
                  result.predicted.rv_charged_seconds, result.actual.rv_charged_seconds,
                  d_rv);
    result.detail = buf;
  }
  return result;
}

DifferentialReport run_differential_portfolio(const engine::EngineConfig& config,
                                              const std::vector<workload::Job>& closed_jobs,
                                              const policy::Portfolio& portfolio,
                                              std::size_t stride,
                                              DifferentialTolerance tolerance) {
  PSCHED_ASSERT(stride > 0);
  DifferentialReport report;
  const auto& policies = portfolio.policies();
  for (std::size_t i = 0; i < policies.size(); i += stride) {
    report.results.push_back(
        run_differential(config, closed_jobs, policies[i], tolerance));
    if (!report.results.back().pass) ++report.failures;
  }
  return report;
}

}  // namespace psched::validate
