#pragma once
// Runtime invariant checker for the outer cluster simulation.
//
// The checker observes every event-loop, cloud-provider, and engine-level
// transition of a run and asserts the IaaS-model invariants the paper's
// results depend on (the catalog below, documented in DESIGN.md,
// "Validation & testing"). It is compiled in always and attached only when
// ValidationConfig::check_invariants is set — a disengaged checker costs
// the engine one null-pointer branch per hook site.
//
// Invariant catalog (names appear in violation reports):
//   event.monotone-time    dispatch timestamps never decrease
//   event.no-past-schedule events are never scheduled before the clock
//   event.conservation     scheduled == dispatched + cancelled + pending
//   vm.cap                 leased VM count <= ProviderConfig::max_vms
//   vm.boot-before-run     no job is assigned to a VM before boot_complete
//   vm.idle-before-assign  jobs start only on idle VMs
//   billing.ceil           each release charges ceil(lease/quantum) quanta
//                          (crash/boot-fail terminations included)
//   billing.monotone       the charged total never decreases
//   job.conservation       submitted == queued + running + finished +
//                          blocked + killed-final (resubmitted jobs count
//                          as queued/running again, never twice)
//   job.width              a started job occupies exactly `procs` VMs
//   job.start-after-eligible  start >= eligibility >= submission
//   metrics.consistent     RJ/RV/BSD non-negative, BSD >= 1, RJ matches the
//                          sum of finished jobs' work, RV matches the
//                          provider's released charges
//   failure.consistent     failure-aware metrics match the observed event
//                          stream (boot-fails, crashes, kills), and every
//                          lease is settled by exactly one release, crash,
//                          boot failure, or spot revocation
//   pricing.cost           each dollar settlement equals the checker's own
//                          independent lease_cost recomputation
//   pricing.commitment     live reserved leases never exceed the commitment
//   pricing.revocation     only doomed spot leases are revoked (warning
//                          precedes the kill), billed ceil like a crash
//   pricing.consistent     pricing metrics match the observed event stream
//                          (warnings, revocations, per-tier spend, waste)
//   tenant.global-cap      arbiter allocations (and live leases) summed
//                          across tenants never exceed the shared provider
//                          cap, and no tenant is allocated below its live
//                          fleet (allowances never evict)
//   tenant.fairness        weighted max-min bound: no in-budget tenant with
//                          unmet demand sits more than one VM below its
//                          quota share while another tenant holds more than
//                          one VM above its own share (beyond its floor)
//   tenant.conservation    per-tenant submitted == finished + killed-final
//                          at the end of a multi-tenant run
//
// Violations either abort through util/assert.hpp::invariant_fail (with the
// simulated clock / event / policy context) or, in record mode, accumulate
// on the checker for harnesses to inspect (ValidationConfig::
// abort_on_violation).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cloud/provider.hpp"
#include "metrics/collector.hpp"
#include "sim/simulator.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"
#include "validate/validation.hpp"

namespace psched::validate {

/// One recorded invariant violation (record mode).
struct Violation {
  std::string invariant;  ///< catalog name, e.g. "billing.ceil"
  std::string detail;     ///< human-readable specifics
  SimTime when = 0.0;     ///< simulated clock at detection
};

/// Aggregate job counts the engine reports at each scheduling tick for the
/// conservation invariant.
struct JobCensus {
  std::size_t submitted = 0;  ///< arrivals dispatched so far
  std::size_t queued = 0;     ///< waiting in the scheduler queue
  std::size_t running = 0;    ///< currently executing
  std::size_t finished = 0;   ///< completed (recorded by the collector)
  std::size_t blocked = 0;    ///< arrived but dependency-blocked
  /// Arrived jobs dropped for good by the failure layer: resubmission
  /// budget exhausted, or a workflow dependent of such a job. 0 without a
  /// failure model.
  std::size_t killed = 0;
};

/// One tenant's slice of a multi-tenant arbitration decision, reported by
/// MultiTenantExperiment after every epoch (engine/tenant.hpp).
struct TenantAllocation {
  std::size_t tenant = 0;
  double weight = 1.0;
  std::size_t leased_vms = 0;     ///< live fleet (the allocation floor)
  std::size_t demand_vms = 0;     ///< leased + queued width
  std::size_t allocated_vms = 0;  ///< the arbiter's grant for the next epoch
  bool over_budget = false;       ///< past its VM-hour budget (forfeits the
                                  ///< fairness guarantee, keeps its floor)
};

/// All observer hooks run on the engine's event-loop thread: the engine is
/// single-threaded (selector candidate waves parallelize *inner* what-if
/// simulations, never the outer engine), so the checker's counters need no
/// locking. PSCHED_CONFINED_TO records this; attaching one checker to
/// engines on multiple threads is unsupported.
class InvariantChecker final : public sim::SimObserver, public cloud::ProviderObserver {
 public:
  /// `provider` carries the *intended* semantics (cap, boot delay, billing
  /// quantum); the checker judges observed behavior against it, so injected
  /// faults (ProviderConfig::inject_fault) surface as violations. When
  /// `pricing` is enabled the checker builds its *own* PricingModel from it
  /// (the walk materialization is deterministic and the checker never draws
  /// from the spot stream, so recomputed prices match the provider's
  /// independently).
  InvariantChecker(ValidationConfig config, cloud::ProviderConfig provider,
                   cloud::PricingConfig pricing = {});

  // --- sim::SimObserver -----------------------------------------------------
  void on_schedule(SimTime when, SimTime now, sim::EventId id) override;
  void on_dispatch(SimTime now, SimTime previous, sim::EventId id) override;

  // --- cloud::ProviderObserver ----------------------------------------------
  void on_lease(const cloud::VmInstance& vm, std::size_t leased_count,
                SimTime now) override;
  void on_finish_boot(const cloud::VmInstance& vm, SimTime now) override;
  void on_assign(const cloud::VmInstance& vm, JobId job, SimTime now) override;
  void on_unassign(const cloud::VmInstance& vm, SimTime now) override;
  void on_release(const cloud::VmInstance& vm, double charged_hours_delta,
                  SimTime now) override;
  void on_boot_fail(const cloud::VmInstance& vm, double charged_hours_delta,
                    SimTime now) override;
  void on_crash(const cloud::VmInstance& vm, double charged_hours_delta,
                SimTime now) override;
  void on_spot_warning(const cloud::VmInstance& vm, SimTime now) override;
  void on_spot_revoke(const cloud::VmInstance& vm, double charged_hours_delta,
                      SimTime now) override;
  void on_price_settle(const cloud::VmInstance& vm, double cost_dollars,
                       SimTime now) override;

  // --- engine hooks ---------------------------------------------------------
  /// A job left the queue and started on `vm_count` VMs.
  void on_job_started(JobId job, int procs, std::size_t vm_count, SimTime eligible,
                      SimTime submit, SimTime now);
  /// A job finished; `record` is what the engine handed the collector.
  void on_job_finished(const metrics::JobRecord& record, SimTime now);
  /// A running job's slice was killed by a VM crash (it may be resubmitted
  /// or dropped for good; on_tick_end's census tells the two apart).
  void on_job_killed(JobId job, SimTime now);
  /// End of a scheduling tick: job conservation + cap re-check.
  void on_tick_end(const JobCensus& census, std::size_t leased_vms, SimTime now);
  /// End of run: event conservation, metric consistency, utility inputs.
  void on_run_end(const metrics::RunMetrics& metrics, const sim::Simulator& sim,
                  double provider_charged_hours);

  // --- multi-tenant service hooks (engine/tenant.hpp, DESIGN.md §13) --------
  // Called on the coordinating thread between tenant waves — never
  // concurrently with the per-tenant engine hooks above, which run on
  // per-tenant checkers.
  /// One arbitration decision: global-cap and weighted max-min fairness.
  void on_tenant_arbitration(const std::vector<TenantAllocation>& allocations,
                             std::size_t global_cap, SimTime now);
  /// One tenant's end-of-run totals: per-tenant job conservation.
  void on_tenant_run_end(std::size_t tenant, std::size_t submitted,
                         std::size_t finished, std::size_t killed, SimTime now);

  // --- results --------------------------------------------------------------
  [[nodiscard]] std::uint64_t checks_run() const noexcept { return checks_; }
  [[nodiscard]] std::uint64_t violation_count() const noexcept { return violation_count_; }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }

 private:
  /// Count one evaluated check; returns `ok` so call sites read naturally.
  bool check(bool ok) noexcept {
    ++checks_;
    return ok;
  }
  void fail(const char* invariant, SimTime when, std::string detail);

  ValidationConfig config_;
  cloud::ProviderConfig provider_;  ///< intended semantics

  std::uint64_t checks_ PSCHED_CONFINED_TO("engine event loop") = 0;
  std::uint64_t violation_count_ PSCHED_CONFINED_TO("engine event loop") = 0;
  std::vector<Violation> violations_ PSCHED_CONFINED_TO("engine event loop");

  SimTime last_dispatch_ PSCHED_CONFINED_TO("engine event loop") = 0.0;
  /// Checker's own running total of charged hours.
  double charged_total_hours_ PSCHED_CONFINED_TO("engine event loop") = 0.0;
  /// Sum of finished jobs' procs * runtime.
  double expected_rj_ PSCHED_CONFINED_TO("engine event loop") = 0.0;
  std::size_t finished_jobs_ PSCHED_CONFINED_TO("engine event loop") = 0;

  // Failure-event stream tallies (failure.consistent). All stay zero — and
  // the run-end cross-check stays silent — without a failure model.
  std::size_t observed_leases_ PSCHED_CONFINED_TO("engine event loop") = 0;
  std::size_t observed_releases_ PSCHED_CONFINED_TO("engine event loop") = 0;
  std::size_t observed_boot_fails_ PSCHED_CONFINED_TO("engine event loop") = 0;
  std::size_t observed_crashes_ PSCHED_CONFINED_TO("engine event loop") = 0;
  std::size_t observed_kills_ PSCHED_CONFINED_TO("engine event loop") = 0;
  double failed_charged_hours_ PSCHED_CONFINED_TO("engine event loop") = 0.0;

  // Pricing-event stream tallies (pricing.*). All stay zero — and the
  // run-end cross-check stays silent — without an enabled pricing config,
  // so pricing-off check counts are exactly the pre-pricing ones.
  cloud::PricingConfig pricing_config_;
  std::unique_ptr<cloud::PricingModel> pricing_model_;  // when pricing enabled
  std::size_t observed_spot_warnings_ PSCHED_CONFINED_TO("engine event loop") = 0;
  std::size_t observed_revokes_ PSCHED_CONFINED_TO("engine event loop") = 0;
  std::size_t reserved_live_vms_ PSCHED_CONFINED_TO("engine event loop") = 0;
  double observed_spend_on_demand_ PSCHED_CONFINED_TO("engine event loop") = 0.0;
  double observed_spend_spot_ PSCHED_CONFINED_TO("engine event loop") = 0.0;
  double revoked_charged_hours_ PSCHED_CONFINED_TO("engine event loop") = 0.0;
};

}  // namespace psched::validate
