#include "validate/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "engine/checkpoint.hpp"
#include "engine/experiment.hpp"
#include "engine/tenant.hpp"
#include "obs/report.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace psched::validate {

namespace {

/// Everything one seed needs to run (and re-run, during shrinking).
struct Scenario {
  std::vector<workload::Job> jobs;
  engine::EngineConfig config;
  engine::PredictorKind predictor = engine::PredictorKind::kPerfect;
  policy::PolicyTriple triple{};   ///< single-policy scenarios
  bool portfolio = false;          ///< run the portfolio scheduler instead
  /// Portfolio scenarios run the selector in fixed-count budget mode (no
  /// clock reads), so a failing seed replays identically while shrinking
  /// regardless of machine load; both knobs are fuzzed per seed.
  std::size_t selector_fixed_count = 0;
  std::size_t selector_eval_threads = 1;
  bool selector_memoize = true;
  bool selector_verify_memo = false;
  /// Multi-tenant scenarios (engine/tenant.hpp): the job prefix is sharded
  /// round-robin across this many tenants, each cleaned to its quota floor.
  /// 0 = single-tenant (the classic path).
  std::size_t tenant_count = 0;
  std::size_t arbitration_ticks = 1;
  std::vector<double> tenant_weights;
  std::vector<double> tenant_budgets;  ///< VM-hours; 0 = unlimited
  /// Checkpoint pass (see FuzzConfig::fuzz_checkpoints): cadence in epochs
  /// (0 = pass disabled for this seed) and the drawn write corruption
  /// (kNone, or torn-write / bit-flip on the corruption seeds).
  std::size_t checkpoint_every = 0;
  FaultInjection checkpoint_corrupt = FaultInjection::kNone;
  std::string description;
};

/// Derive one scenario deterministically from its seed. Small caps and short
/// boot delays are deliberate: a 4-VM cap under a burst exercises vm.cap and
/// the release rules far harder than the paper's 256.
Scenario make_scenario(std::uint64_t seed, const FuzzConfig& fuzz,
                       const policy::Portfolio& portfolio,
                       const policy::Portfolio& pricing_portfolio) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  Scenario s;

  const std::vector<workload::GeneratorConfig> archetypes =
      workload::paper_archetypes(/*duration_days=*/rng.uniform(0.05, 0.2));
  workload::GeneratorConfig gen = archetypes[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(archetypes.size()) - 1))];
  // Short horizons under-sample the arrival process; boost the rate so most
  // seeds still see queue contention.
  gen.jobs_per_month *= rng.uniform(1.0, 4.0);

  s.config = engine::paper_engine_config();
  static constexpr std::size_t kCaps[] = {4, 8, 16, 32};
  static constexpr double kBootDelays[] = {30.0, 120.0, 300.0};
  static constexpr double kQuanta[] = {60.0, 900.0, 3600.0};
  s.config.provider.max_vms = kCaps[rng.uniform_int(0, 3)];
  s.config.provider.boot_delay = kBootDelays[rng.uniform_int(0, 2)];
  s.config.provider.billing_quantum = kQuanta[rng.uniform_int(0, 2)];
  s.config.release_rule = rng.bernoulli(0.5) ? engine::ReleaseRule::kEagerSurplus
                                             : engine::ReleaseRule::kBoundary;
  s.config.allocation = rng.bernoulli(0.5) ? policy::AllocationMode::kHeadOfLine
                                           : policy::AllocationMode::kEasyBackfill;
  s.config.validation.check_invariants = true;
  s.config.validation.abort_on_violation = false;
  s.config.validation.inject_fault = fuzz.inject_fault;

  static constexpr engine::PredictorKind kPredictors[] = {
      engine::PredictorKind::kPerfect, engine::PredictorKind::kTsafrir,
      engine::PredictorKind::kUserEstimate};
  s.predictor = kPredictors[rng.uniform_int(0, 2)];

  s.jobs = workload::TraceGenerator(gen)
               .generate(seed)
               .cleaned(static_cast<int>(s.config.provider.max_vms))
               .jobs();
  if (s.jobs.size() > fuzz.max_jobs) s.jobs.resize(fuzz.max_jobs);

  s.portfolio = seed % 5 == 0;
  if (!s.portfolio) {
    const auto& policies = portfolio.policies();
    s.triple = policies[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(policies.size()) - 1))];
  } else {
    // Drawn last so the earlier scenario-shape draws keep their streams.
    s.selector_fixed_count = static_cast<std::size_t>(rng.uniform_int(1, 24));
    s.selector_eval_threads = static_cast<std::size_t>(rng.uniform_int(1, 4));
    // Seed-derived (not RNG-drawn) so the failure-knob draws below keep
    // their streams: half the portfolio seeds run with the memo cache off,
    // and the cached half cross-checks every hit against a fresh simulation
    // (verify_memo) — the fuzzer doubles as a fingerprint-collision hunt.
    s.selector_memoize = seed % 2 == 0;
    s.selector_verify_memo = true;
  }

  if (fuzz.fuzz_failures && seed % 3 == 0) {
    // Drawn after every scenario-shape draw (see FuzzConfig::fuzz_failures).
    // Small rates: enough events to exercise the resilience paths without
    // starving the scenario of progress.
    s.config.failure.p_boot_fail = rng.uniform(0.0, 0.15);
    s.config.failure.vm_mtbf_seconds = rng.uniform(2.0, 48.0) * kSecondsPerHour;
    if (rng.bernoulli(0.5)) {
      s.config.failure.api_outage_gap_seconds = rng.uniform(1.0, 8.0) * kSecondsPerHour;
      s.config.failure.api_outage_duration_seconds = rng.uniform(60.0, 900.0);
    }
    s.config.failure.seed = seed ^ 0xfa11u;
    s.config.resilience.max_resubmits =
        static_cast<std::size_t>(rng.uniform_int(0, 4));
  }

  if (fuzz.fuzz_pricing && seed % 3 == 2) {
    // Drawn after every scenario-shape and failure draw (see
    // FuzzConfig::fuzz_pricing). Small family mixes and short spot MTBFs:
    // enough tier churn and revocations to exercise the pricing invariants
    // on every seed without starving the scenario of progress.
    cloud::PricingConfig& pricing = s.config.pricing;
    static constexpr double kFamilyPrices[] = {0.5, 1.0, 2.5};
    static constexpr double kFamilyBoots[] = {30.0, 120.0, 300.0};
    const std::int64_t family_count = rng.uniform_int(1, 3);
    for (std::int64_t f = 0; f < family_count; ++f) {
      cloud::VmFamily family;
      family.name = 'f' + std::to_string(f);
      family.price = kFamilyPrices[f] * rng.uniform(0.8, 1.2);
      family.boot_delay = kFamilyBoots[f];
      family.max_vms =
          rng.bernoulli(0.5) ? std::max<std::size_t>(1, s.config.provider.max_vms / 2)
                             : 0;
      pricing.families.push_back(std::move(family));
    }
    if (rng.bernoulli(0.6)) {
      pricing.spot_price_fraction = rng.uniform(0.2, 0.6);
      pricing.spot_mtbf_seconds = rng.uniform(0.5, 12.0) * kSecondsPerHour;
      pricing.spot_warning_seconds = rng.uniform(0.0, 180.0);
    }
    if (rng.bernoulli(0.5)) {
      pricing.schedule = {{0.0, rng.uniform(0.5, 1.5)},
                          {rng.uniform(600.0, 7200.0), rng.uniform(0.5, 2.0)}};
    }
    if (rng.bernoulli(0.5)) {
      pricing.walk_step = rng.uniform(0.02, 0.2);
      pricing.walk_epoch_seconds = rng.uniform(300.0, 3600.0);
    }
    if (rng.bernoulli(0.3)) {
      pricing.reserved_count = static_cast<std::size_t>(rng.uniform_int(1, 4));
      pricing.reserved_term_seconds = rng.uniform(1.0, 48.0) * kSecondsPerHour;
    }
    pricing.seed = seed ^ 0x951ceu;
    if (!s.portfolio) {
      // Re-draw the triple from the tier-aware portfolio so spot-first /
      // reserved-baseline / price-threshold provisioning runs under the
      // checker too (draw happens after all pre-pricing draws, so
      // fuzz_pricing=false seeds keep their exact policies).
      const auto& policies = pricing_portfolio.policies();
      s.triple = policies[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(policies.size()) - 1))];
    }
  }

  const bool tenant_fault =
      fuzz.inject_fault == FaultInjection::kTenantCapOvershoot ||
      fuzz.inject_fault == FaultInjection::kTenantUnfairShare;
  // Provider-fault self-tests stay single-tenant: inside a tenant the
  // provider's cap is its (smaller) allowance, so e.g. cap-overshoot
  // surfaces as tenant.global-cap instead of the vm.cap the self-test pins.
  const bool provider_fault =
      fuzz.inject_fault != FaultInjection::kNone && !tenant_fault;
  if ((fuzz.fuzz_tenants && seed % 4 == 1 && !provider_fault) || tenant_fault) {
    // Drawn after every scenario-shape, failure, and pricing draw (see
    // FuzzConfig::fuzz_tenants). Small mixes: 2-4 tenants over the already
    // tight caps keep the arbiter busy every epoch.
    s.tenant_count = static_cast<std::size_t>(rng.uniform_int(2, 4));
    s.arbitration_ticks = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (std::size_t t = 0; t < s.tenant_count; ++t) {
      s.tenant_weights.push_back(rng.bernoulli(0.3) ? 2.0 : 1.0);
      s.tenant_budgets.push_back(rng.bernoulli(0.3) ? rng.uniform(0.05, 2.0)
                                                    : 0.0);
    }
  }

  if (fuzz.fuzz_checkpoints && seed % 5 == 3 && s.tenant_count == 0) {
    // Drawn after every scenario-shape, failure, pricing, and tenant draw
    // (see FuzzConfig::fuzz_checkpoints). Single-tenant only: the tenant
    // resume-identity matrix lives in tests/integration.
    s.checkpoint_every = static_cast<std::size_t>(rng.uniform_int(4, 32));
    if (seed % 3 == 0) {
      s.checkpoint_corrupt = rng.bernoulli(0.5)
                                 ? FaultInjection::kCheckpointTornWrite
                                 : FaultInjection::kCheckpointBitFlip;
    }
  }

  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "%s, %zu jobs, cap=%zu, boot=%.0fs, quantum=%.0fs, %s, %s, "
                "predictor=%s, %s",
                gen.name.c_str(), s.jobs.size(), s.config.provider.max_vms,
                s.config.provider.boot_delay, s.config.provider.billing_quantum,
                s.config.release_rule == engine::ReleaseRule::kEagerSurplus
                    ? "eager-release" : "boundary-release",
                s.config.allocation == policy::AllocationMode::kHeadOfLine
                    ? "head-of-line" : "easy-backfill",
                engine::to_string(s.predictor).c_str(),
                s.portfolio ? "portfolio" : s.triple.name().c_str());
  s.description = buf;
  if (s.config.failure.enabled()) {
    char fbuf[96];
    std::snprintf(fbuf, sizeof(fbuf),
                  ", failures(p_boot=%.2f, mtbf=%.0fs, outage_gap=%.0fs)",
                  s.config.failure.p_boot_fail, s.config.failure.vm_mtbf_seconds,
                  s.config.failure.api_outage_gap_seconds);
    s.description += fbuf;
  }
  if (s.config.pricing.enabled()) {
    char pbuf[96];
    std::snprintf(pbuf, sizeof(pbuf),
                  ", pricing(families=%zu, spot=%.2f, reserved=%zu)",
                  s.config.pricing.families.size(),
                  s.config.pricing.spot_price_fraction,
                  s.config.pricing.reserved_count);
    s.description += pbuf;
  }
  if (s.tenant_count >= 2) {
    char tbuf[64];
    std::snprintf(tbuf, sizeof(tbuf), ", tenants(n=%zu, ticks=%zu)",
                  s.tenant_count, s.arbitration_ticks);
    s.description += tbuf;
  }
  if (s.checkpoint_every > 0) {
    char cbuf[96];
    std::snprintf(cbuf, sizeof(cbuf), ", checkpoint(every=%zu, corrupt=%s)",
                  s.checkpoint_every, to_string(s.checkpoint_corrupt));
    s.description += cbuf;
  }
  return s;
}

/// Run one scenario on a job prefix; returns the violations (empty = clean).
struct RunOutcome {
  std::uint64_t checks = 0;
  std::vector<Violation> violations;
};

core::PortfolioSchedulerConfig fuzz_portfolio_config(const Scenario& s) {
  core::PortfolioSchedulerConfig pconfig = engine::paper_portfolio_config(s.config);
  // Select infrequently: the invariants under test live in the engine and
  // provider, and a cheap selector keeps 50-seed runs inside the smoke cap.
  pconfig.selection_period_ticks = 16;
  pconfig.selector.budget_mode = core::BudgetMode::kFixedCount;
  pconfig.selector.fixed_count = s.selector_fixed_count;
  pconfig.selector.eval_threads = s.selector_eval_threads;
  pconfig.selector.memoize = s.selector_memoize;
  pconfig.selector.verify_memo = s.selector_verify_memo;
  return pconfig;
}

RunOutcome run_scenario(const Scenario& s, std::size_t job_count,
                        const policy::Portfolio& portfolio) {
  std::vector<workload::Job> jobs(s.jobs.begin(),
                                  s.jobs.begin() + static_cast<std::ptrdiff_t>(job_count));
  const workload::Trace trace("fuzz", static_cast<int>(s.config.provider.max_vms),
                              std::move(jobs));

  if (s.tenant_count >= 2) {
    // Multi-tenant path: shard the prefix round-robin, clean each shard to
    // its tenant's quota floor (jobs wider than the guaranteed share could
    // livelock under max-min; see MultiTenantExperiment's ctor), and run
    // the service loop. Tenant faults are injected at arbitration; provider
    // faults hit every tenant's own engine and checker.
    double total_weight = 0.0;
    for (const double w : s.tenant_weights) total_weight += w;
    const auto cap = static_cast<double>(s.config.provider.max_vms);
    const std::vector<workload::Trace> shards =
        workload::shard_round_robin(trace, s.tenant_count);
    std::vector<workload::Trace> tenant_traces;
    tenant_traces.reserve(s.tenant_count);
    for (std::size_t i = 0; i < s.tenant_count; ++i) {
      const auto quota_floor =
          static_cast<int>(cap * s.tenant_weights[i] / total_weight);
      tenant_traces.push_back(shards[i].cleaned(quota_floor));
    }

    engine::MultiTenantConfig mt;
    mt.engine = s.config;
    mt.arbitration_period_ticks = s.arbitration_ticks;
    mt.predictor = s.predictor;
    if (s.portfolio) {
      mt.portfolio = &portfolio;
      mt.scheduler = fuzz_portfolio_config(s);
    } else {
      mt.policy = s.triple;
    }
    for (std::size_t i = 0; i < s.tenant_count; ++i) {
      engine::TenantConfig t;
      t.weight = s.tenant_weights[i];
      t.budget_vm_hours = s.tenant_budgets[i];
      t.resilience = s.config.resilience;
      t.failure = s.config.failure;
      if (t.failure.enabled())
        t.failure.seed = engine::tenant_failure_seed(s.config.failure.seed, i);
      t.trace = &tenant_traces[i];
      mt.tenants.push_back(std::move(t));
    }
    engine::MultiTenantExperiment experiment(std::move(mt));
    engine::MultiTenantResult result = experiment.run();
    return RunOutcome{result.invariant_checks,
                      std::move(result.invariant_violations)};
  }

  engine::ScenarioResult result;
  if (s.portfolio) {
    result = engine::run_portfolio(s.config, trace, portfolio,
                                   fuzz_portfolio_config(s), s.predictor);
  } else {
    result = engine::run_single_policy(s.config, trace, s.triple, s.predictor);
  }
  return RunOutcome{result.run.invariant_checks,
                    std::move(result.run.invariant_violations)};
}

/// The checkpoint.roundtrip property (FuzzConfig::fuzz_checkpoints): a
/// checkpointed run and a resumed run must both report byte-identically to
/// the straight run; corrupt checkpoints must all be rejected with a clean
/// fallback. Returns the violations (empty = property holds).
std::vector<Violation> check_checkpoint_property(const Scenario& s,
                                                 std::uint64_t seed,
                                                 const policy::Portfolio& portfolio) {
  namespace fs = std::filesystem;
  std::vector<Violation> out;
  const auto fail = [&](const std::string& detail) {
    out.push_back(Violation{"checkpoint.roundtrip", detail, 0.0});
  };
  const workload::Trace trace("fuzz", static_cast<int>(s.config.provider.max_vms),
                              std::vector<workload::Job>(s.jobs));
  const auto report_of = [&](const engine::ScenarioResult& r) {
    return obs::run_report_json(engine::report_inputs(r, s.config), nullptr);
  };
  const auto run_checkpointed = [&](const engine::CheckpointConfig& ckpt,
                                    engine::CheckpointStats& stats) {
    return s.portfolio
               ? engine::run_portfolio_checkpointed(s.config, trace, portfolio,
                                                    fuzz_portfolio_config(s),
                                                    s.predictor, ckpt, stats)
               : engine::run_single_policy_checkpointed(s.config, trace, s.triple,
                                                        s.predictor, ckpt, stats);
  };

  const engine::ScenarioResult base =
      s.portfolio
          ? engine::run_portfolio(s.config, trace, portfolio,
                                  fuzz_portfolio_config(s), s.predictor)
          : engine::run_single_policy(s.config, trace, s.triple, s.predictor);
  const std::string base_report = report_of(base);

  // Per-seed scratch directory (address tag keeps concurrent processes on
  // the same seed apart; the name never feeds any digest or metric).
  std::error_code ec;
  const fs::path dir =
      fs::temp_directory_path(ec) /
      ("psched-fuzz-ckpt-" + std::to_string(seed) + "-" +
       std::to_string(reinterpret_cast<std::uintptr_t>(&out) & 0xffffffu));
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);

  engine::CheckpointConfig ckpt;
  ckpt.every_epochs = s.checkpoint_every;
  ckpt.directory = dir.string();
  ckpt.prefix = "fuzz";
  ckpt.keep = 3;
  const bool corrupt = s.checkpoint_corrupt != FaultInjection::kNone;
  if (corrupt) {
    // Leave the corrupt files on disk (no read-back verification) so the
    // resume scan below has to detect and reject them itself.
    ckpt.inject_fault = s.checkpoint_corrupt;
    ckpt.verify_roundtrip = false;
  }
  engine::CheckpointStats write_stats;
  const engine::ScenarioResult checkpointed = run_checkpointed(ckpt, write_stats);
  if (report_of(checkpointed) != base_report)
    fail("checkpointed run diverged from the straight run");

  engine::CheckpointConfig resume = ckpt;
  resume.resume_from = "auto";
  resume.inject_fault = FaultInjection::kNone;
  resume.verify_roundtrip = true;
  engine::CheckpointStats resume_stats;
  const engine::ScenarioResult resumed = run_checkpointed(resume, resume_stats);
  if (report_of(resumed) != base_report)
    fail("resumed run diverged from the straight run");
  if (write_stats.written > 0) {
    if (corrupt) {
      if (resume_stats.rejected == 0)
        fail("corrupt checkpoints were not rejected on resume");
      if (resume_stats.resumed_epoch != 0)
        fail("resume trusted a corrupt checkpoint instead of a fresh start");
    } else {
      if (resume_stats.restored != 1)
        fail("no restore happened despite valid checkpoints on disk");
      if (resume_stats.resumed_epoch == 0) fail("restored at epoch 0");
    }
  }
  fs::remove_all(dir, ec);
  return out;
}

}  // namespace

FuzzReport run_fuzz(const FuzzConfig& config) {
  const policy::Portfolio portfolio = policy::Portfolio::paper_portfolio();
  const policy::Portfolio pricing_portfolio = policy::Portfolio::pricing_portfolio();
  FuzzReport report;
  report.seeds_requested = config.num_seeds;

  const auto started = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
        .count();
  };

  for (std::size_t i = 0; i < config.num_seeds; ++i) {
    if (config.time_cap_seconds > 0.0 && elapsed() >= config.time_cap_seconds) {
      report.timed_out = true;
      break;
    }
    const std::uint64_t seed = config.base_seed + i;
    const Scenario scenario = make_scenario(seed, config, portfolio, pricing_portfolio);
    if (scenario.jobs.empty()) {  // degenerate horizon: nothing to run
      ++report.seeds_run;
      continue;
    }
    // Pricing-enabled portfolio seeds run the tier-aware portfolio so the
    // new provisioning policies actually appear in selector rounds.
    const policy::Portfolio& run_portfolio =
        scenario.config.pricing.enabled() ? pricing_portfolio : portfolio;
    RunOutcome outcome = run_scenario(scenario, scenario.jobs.size(), run_portfolio);
    report.total_checks += outcome.checks;
    ++report.seeds_run;
    if (outcome.violations.empty() && scenario.checkpoint_every > 0) {
      // Only clean scenarios run the checkpoint pass: a violating seed's
      // report already carries the more fundamental failure.
      std::vector<Violation> ckpt_violations =
          check_checkpoint_property(scenario, seed, run_portfolio);
      ++report.total_checks;
      if (!ckpt_violations.empty()) {
        // Not shrunk: the checkpoint property is about the whole-run replay,
        // and a shorter prefix checkpoints at different epochs entirely.
        FuzzFailure failure;
        failure.seed = seed;
        failure.jobs = scenario.jobs.size();
        failure.original_jobs = scenario.jobs.size();
        failure.scenario = scenario.description;
        failure.violations = std::move(ckpt_violations);
        report.failure = std::move(failure);
        break;
      }
    }
    if (outcome.violations.empty()) continue;

    // First failure: report it, optionally shrunk to a smaller prefix.
    FuzzFailure failure;
    failure.seed = seed;
    failure.original_jobs = scenario.jobs.size();
    failure.scenario = scenario.description;
    std::size_t jobs = scenario.jobs.size();
    if (config.shrink) {
      // Prefix halving: keep the half-sized prefix while it still violates.
      // Greedy and simple — the goal is a smaller repro, not a minimal one.
      while (jobs > 1) {
        const std::size_t half = jobs / 2;
        RunOutcome shrunk = run_scenario(scenario, half, run_portfolio);
        if (shrunk.violations.empty()) break;
        jobs = half;
        outcome = std::move(shrunk);
      }
    }
    failure.jobs = jobs;
    failure.violations = std::move(outcome.violations);
    report.failure = std::move(failure);
    break;
  }
  return report;
}

}  // namespace psched::validate
