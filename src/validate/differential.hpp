#pragma once
// Differential oracle: the inner online simulator (core/online_sim) and the
// outer trace-driven engine (engine/cluster_sim) implement the same
// scheduling semantics twice — shared planner, shared release rules, shared
// billing. On a *closed* problem instance they must agree, and this module
// asserts that they do.
//
// Ground rules for a closed instance (anything else makes disagreement
// legitimate, not a bug):
//   * every job is submitted at t=0 (no future arrivals — the inner
//     simulator never sees arrivals);
//   * runtimes are exact multiples of the scheduling period (both sides
//     quantize decisions to ticks; off-tick completions round differently);
//   * predictions are perfect (the engine runs jobs for their actual
//     runtime; the inner simulator only ever sees predictions);
//   * the starting fleet is empty (a non-empty fleet snapshot has paid-time
//     history the two sides account identically only through the profile,
//     which normalize_closed_instance does not attempt to construct);
//   * no workflow dependencies (the inner simulator has no DAG support).
//
// Under these rules agreement is EXACT up to floating-point accumulation
// order; DifferentialTolerance is pure FP slack, not model slack (see
// DESIGN.md, "Validation & testing"). tests/integration/consistency_test.cpp
// pins the same property on a hand-written instance; this oracle generalizes
// it to arbitrary generated workloads and exposes it to psched_cli
// (--differential) and the validation test suite.

#include <cstdint>
#include <string>
#include <vector>

#include "core/online_sim.hpp"
#include "engine/experiment.hpp"
#include "workload/generator.hpp"

namespace psched::validate {

/// Permitted disagreement between the two implementations. The defaults are
/// floating-point-accumulation slack only: both sides sum the same exact
/// per-job/per-VM quantities in different orders. Any modeling bug is off by
/// at least one tick, one billing quantum, or one job — many orders of
/// magnitude above these.
struct DifferentialTolerance {
  double bsd_abs = 1e-9;      ///< |avg bounded slowdown| disagreement
  double seconds_abs = 1e-6;  ///< |RJ| and |RV| disagreement (seconds)
};

/// One policy's verdict: the inner simulator's prediction vs. the engine's
/// ground truth on the same closed instance.
struct DifferentialResult {
  std::string policy;
  core::SimOutcome predicted;    ///< inner online-simulator outcome
  metrics::RunMetrics actual;    ///< outer engine outcome
  bool pass = false;
  std::string detail;            ///< populated on failure
};

struct DifferentialReport {
  std::vector<DifferentialResult> results;
  std::size_t failures = 0;
  [[nodiscard]] bool pass() const noexcept { return failures == 0; }
};

/// Rewrite `jobs` into a closed instance obeying the ground rules above:
/// submit := 0, runtime := ceil to a positive multiple of
/// config.schedule_period, procs clamped to [1, max_vms], estimate :=
/// runtime, dependencies dropped.
[[nodiscard]] std::vector<workload::Job> normalize_closed_instance(
    std::vector<workload::Job> jobs, const engine::EngineConfig& config);

/// Convenience: generate a synthetic workload, keep the first `max_jobs`
/// jobs, and normalize it into a closed instance.
[[nodiscard]] std::vector<workload::Job> closed_instance_from_generator(
    const workload::GeneratorConfig& generator, std::uint64_t seed,
    std::size_t max_jobs, const engine::EngineConfig& config);

/// Run one policy through both implementations on an already-normalized
/// closed instance and compare within `tolerance`.
[[nodiscard]] DifferentialResult run_differential(
    const engine::EngineConfig& config, const std::vector<workload::Job>& closed_jobs,
    const policy::PolicyTriple& policy, DifferentialTolerance tolerance = {});

/// Sweep every `stride`-th policy of `portfolio` (stride 6 covers all
/// provisioning clusters, job orders, and VM selectors, matching the
/// consistency test's sample).
[[nodiscard]] DifferentialReport run_differential_portfolio(
    const engine::EngineConfig& config, const std::vector<workload::Job>& closed_jobs,
    const policy::Portfolio& portfolio, std::size_t stride = 6,
    DifferentialTolerance tolerance = {});

}  // namespace psched::validate
