#pragma once
// Deterministic pending-event set for discrete-event simulation.
//
// Ordering is total: (time, sequence). Two events scheduled for the same
// simulated instant fire in scheduling order, so simulation results never
// depend on heap-internal tie-breaking. Cancellation is O(1) by id
// (lazy deletion on pop).

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/types.hpp"

namespace psched::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute simulated time `t`. Returns a handle usable
  /// with cancel(). Requires t to be finite.
  EventId schedule(SimTime t, Callback cb);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (common when a completion races a timeout).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }

  /// True if the event id is scheduled and not yet fired or cancelled.
  [[nodiscard]] bool is_pending(EventId id) const { return pending_.contains(id); }

  /// Time of the earliest live event; kTimeNever when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pop and return the earliest live event. Requires !empty().
  struct Fired {
    SimTime time;
    EventId id;
    Callback callback;
  };
  Fired pop();

  // --- lifetime accounting (validation) ------------------------------------
  // Every scheduled event is eventually popped, cancelled, or still pending;
  // the InvariantChecker asserts this conservation law at end of run.
  [[nodiscard]] std::uint64_t total_scheduled() const noexcept { return total_scheduled_; }
  [[nodiscard]] std::uint64_t total_cancelled() const noexcept { return total_cancelled_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;  // also the monotone sequence number
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  /// Drop cancelled entries from the heap top.
  void skim();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;  // scheduled, not fired, not cancelled
  EventId next_id_ = 1;
  std::uint64_t total_scheduled_ = 0;
  std::uint64_t total_cancelled_ = 0;  // live cancels only (no-op cancels excluded)
};

}  // namespace psched::sim
