#pragma once
// The simulation driver: a clock plus an EventQueue. Components schedule
// callbacks; run() dispatches them in deterministic order until the queue
// drains or a horizon is reached.

#include <cstdint>

#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace psched::sim {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_dispatched() const noexcept { return dispatched_; }

  /// Schedule at an absolute time (must be >= now()).
  EventId at(SimTime t, EventQueue::Callback cb);

  /// Schedule after a relative delay (must be >= 0).
  EventId after(SimDuration delay, EventQueue::Callback cb);

  void cancel(EventId id) { queue_.cancel(id); }

  [[nodiscard]] bool has_pending() const noexcept { return !queue_.empty(); }
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }

  /// Dispatch events until the queue is empty. Returns events dispatched.
  std::uint64_t run();

  /// Dispatch events with time <= horizon; the clock ends at
  /// max(now, min(horizon, last event time)). Returns events dispatched.
  std::uint64_t run_until(SimTime horizon);

  /// Dispatch exactly one event if present. Returns true if one fired.
  bool step();

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace psched::sim
