#pragma once
// The simulation driver: a clock plus an EventQueue. Components schedule
// callbacks; run() dispatches them in deterministic order until the queue
// drains or a horizon is reached.

#include <cstdint>

#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace psched::sim {

/// Passive observer of the event loop (validation hook). The simulator
/// notifies it on every schedule and dispatch; a null observer costs one
/// predictable branch per operation, so observation is zero-cost when off.
/// Observers must not mutate the simulator they observe.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// An event was scheduled at absolute time `when` while the clock read `now`.
  virtual void on_schedule(SimTime when, SimTime now, EventId id) = 0;

  /// An event is about to fire: the clock moved from `previous` to `now`.
  virtual void on_dispatch(SimTime now, SimTime previous, EventId id) = 0;
};

class Simulator {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_dispatched() const noexcept { return dispatched_; }

  /// Attach (or detach, with nullptr) a validation observer. Borrowed; must
  /// outlive the simulator or be detached first.
  void set_observer(SimObserver* observer) noexcept { observer_ = observer; }

  /// Schedule at an absolute time (must be >= now()).
  EventId at(SimTime t, EventQueue::Callback cb);

  /// Schedule after a relative delay (must be >= 0).
  EventId after(SimDuration delay, EventQueue::Callback cb);

  void cancel(EventId id) { queue_.cancel(id); }

  [[nodiscard]] bool has_pending() const noexcept { return !queue_.empty(); }
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }

  /// Event-lifetime accounting for the conservation invariant (validation).
  [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }

  /// Dispatch events until the queue is empty. Returns events dispatched.
  std::uint64_t run();

  /// Dispatch events with time <= horizon; the clock ends at
  /// max(now, min(horizon, last event time)). Returns events dispatched.
  std::uint64_t run_until(SimTime horizon);

  /// Dispatch exactly one event if present. Returns true if one fired.
  bool step();

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t dispatched_ = 0;
  SimObserver* observer_ = nullptr;
};

}  // namespace psched::sim
