#include "sim/event_queue.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace psched::sim {

EventId EventQueue::schedule(SimTime t, Callback cb) {
  PSCHED_ASSERT_MSG(std::isfinite(t), "cannot schedule an event at infinity");
  const EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(cb)});
  pending_.insert(id);
  ++total_scheduled_;
  return id;
}

void EventQueue::cancel(EventId id) {
  // Lazy deletion: drop the id from the pending set; the heap entry is
  // skipped when it surfaces. Unknown/fired ids are simply absent.
  if (pending_.erase(id) > 0) ++total_cancelled_;
}

void EventQueue::skim() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) heap_.pop();
}

SimTime EventQueue::next_time() const {
  // Logically const: only discards dead heap entries.
  auto& self = const_cast<EventQueue&>(*this);
  self.skim();
  return self.heap_.empty() ? kTimeNever : self.heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  PSCHED_ASSERT_MSG(!heap_.empty(), "pop() on empty event queue");
  // priority_queue::top() is const; the POD parts are copied and the callback
  // moved out via const_cast — the entry is popped on the next line.
  const Entry& top = heap_.top();
  Fired fired{top.time, top.id, std::move(const_cast<Entry&>(top).callback)};
  pending_.erase(fired.id);
  heap_.pop();
  return fired;
}

}  // namespace psched::sim
