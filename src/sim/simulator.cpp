#include "sim/simulator.hpp"

#include "util/assert.hpp"

namespace psched::sim {

EventId Simulator::at(SimTime t, EventQueue::Callback cb) {
  PSCHED_ASSERT_MSG(t >= now_, "scheduling into the past");
  const EventId id = queue_.schedule(t, std::move(cb));
  if (observer_ != nullptr) observer_->on_schedule(t, now_, id);
  return id;
}

EventId Simulator::after(SimDuration delay, EventQueue::Callback cb) {
  PSCHED_ASSERT_MSG(delay >= 0.0, "negative delay");
  const EventId id = queue_.schedule(now_ + delay, std::move(cb));
  if (observer_ != nullptr) observer_->on_schedule(now_ + delay, now_, id);
  return id;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  PSCHED_ASSERT(fired.time >= now_);
  const SimTime previous = now_;
  now_ = fired.time;
  ++dispatched_;
  if (observer_ != nullptr) observer_->on_dispatch(now_, previous, fired.id);
  fired.callback();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    step();
    ++n;
  }
  if (now_ < horizon && horizon != kTimeNever) now_ = horizon;
  return n;
}

}  // namespace psched::sim
