#include "predict/suite.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace psched::predict {

namespace {
constexpr double kMinPrediction = 1.0;

double fallback_estimate(const workload::Job& job) {
  const double est = job.estimate > 0.0 ? job.estimate : job.runtime;
  return std::max(kMinPrediction, est);
}
}  // namespace

double LastRuntimePredictor::predict(const workload::Job& job) const {
  const auto it = last_.find(job.user);
  if (it == last_.end()) return fallback_estimate(job);
  const double capped =
      job.estimate > 0.0 ? std::min(it->second, job.estimate) : it->second;
  return std::max(kMinPrediction, capped);
}

void LastRuntimePredictor::observe_completion(const workload::Job& job) {
  last_[job.user] = job.runtime;
}

double RunningMeanPredictor::predict(const workload::Job& job) const {
  const auto it = state_.find(job.user);
  if (it == state_.end() || it->second.count == 0) return fallback_estimate(job);
  const double capped =
      job.estimate > 0.0 ? std::min(it->second.mean, job.estimate) : it->second.mean;
  return std::max(kMinPrediction, capped);
}

void RunningMeanPredictor::observe_completion(const workload::Job& job) {
  State& s = state_[job.user];
  ++s.count;
  s.mean += (job.runtime - s.mean) / static_cast<double>(s.count);
}

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha) {
  PSCHED_ASSERT(alpha > 0.0 && alpha <= 1.0);
}

double EwmaPredictor::predict(const workload::Job& job) const {
  const auto it = ewma_.find(job.user);
  if (it == ewma_.end()) return fallback_estimate(job);
  const double capped =
      job.estimate > 0.0 ? std::min(it->second, job.estimate) : it->second;
  return std::max(kMinPrediction, capped);
}

void EwmaPredictor::observe_completion(const workload::Job& job) {
  const auto it = ewma_.find(job.user);
  if (it == ewma_.end()) {
    ewma_[job.user] = job.runtime;
    return;
  }
  it->second = alpha_ * job.runtime + (1.0 - alpha_) * it->second;
}

std::string EwmaPredictor::name() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "ewma(alpha=%.2f)", alpha_);
  return buf;
}

std::unique_ptr<RuntimePredictor> make_last_runtime() {
  return std::make_unique<LastRuntimePredictor>();
}
std::unique_ptr<RuntimePredictor> make_running_mean() {
  return std::make_unique<RunningMeanPredictor>();
}
std::unique_ptr<RuntimePredictor> make_ewma(double alpha) {
  return std::make_unique<EwmaPredictor>(alpha);
}

AccuracyReport evaluate_predictor(const workload::Trace& trace,
                                  RuntimePredictor& predictor) {
  AccuracyReport report;
  if (trace.empty()) return report;

  // Min-heap of (completion time, job index): completions are observed as
  // soon as they happen relative to the next submission. Jobs are assumed
  // to run immediately at submission — an optimistic bound on information
  // availability; an engine run gives the scheduler-dependent exact order.
  using Completion = std::pair<double, std::size_t>;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> running;

  double accuracy_sum = 0.0;
  double abs_error_sum = 0.0;
  std::size_t over = 0, under = 0;
  const auto& jobs = trace.jobs();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const workload::Job& job = jobs[i];
    while (!running.empty() && running.top().first <= job.submit) {
      predictor.observe_completion(jobs[running.top().second]);
      running.pop();
    }
    const double predicted = predictor.predict(job);
    const double actual = std::max(1.0, job.runtime);
    accuracy_sum += std::min(predicted, actual) / std::max(predicted, actual);
    abs_error_sum += std::abs(predicted - actual);
    if (predicted > actual) ++over;
    if (predicted < actual) ++under;
    running.emplace(job.submit + job.runtime, i);
  }
  const auto n = static_cast<double>(jobs.size());
  report.jobs = jobs.size();
  report.mean_accuracy = accuracy_sum / n;
  report.mean_abs_error = abs_error_sum / n;
  report.overestimate_fraction = static_cast<double>(over) / n;
  report.underestimate_fraction = static_cast<double>(under) / n;
  return report;
}

}  // namespace psched::predict
