#include "predict/tsafrir.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace psched::predict {

TsafrirPredictor::TsafrirPredictor(std::size_t k) : k_(k) { PSCHED_ASSERT(k >= 1); }

double TsafrirPredictor::predict(const workload::Job& job) const {
  const double estimate = job.estimate > 0.0 ? job.estimate : job.runtime;
  const auto it = history_.find(job.user);
  if (it == history_.end() || it->second.size() < k_) {
    return std::max(1.0, estimate);
  }
  double sum = 0.0;
  for (const double rt : it->second) sum += rt;
  const double prediction = sum / static_cast<double>(it->second.size());
  // Cap at the estimate (kill limit) when the trace provides one.
  const double capped = job.estimate > 0.0 ? std::min(prediction, job.estimate) : prediction;
  return std::max(1.0, capped);
}

void TsafrirPredictor::observe_completion(const workload::Job& job) {
  auto& window = history_[job.user];
  window.push_back(job.runtime);
  while (window.size() > k_) window.pop_front();
}

std::string TsafrirPredictor::name() const {
  return "tsafrir-knn(k=" + std::to_string(k_) + ")";
}

std::unique_ptr<RuntimePredictor> make_tsafrir(std::size_t k) {
  return std::make_unique<TsafrirPredictor>(k);
}

}  // namespace psched::predict
