#include "predict/tsafrir.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace psched::predict {

TsafrirPredictor::TsafrirPredictor(std::size_t k, double default_estimate)
    : k_(k), default_estimate_(default_estimate) {
  PSCHED_ASSERT(k >= 1);
  PSCHED_ASSERT(default_estimate > 0.0);
}

double TsafrirPredictor::predict(const workload::Job& job) const {
  // Never job.runtime: the predictor must not see ground truth it is being
  // scored against, even on the cold-start path.
  const double estimate = job.estimate > 0.0 ? job.estimate : default_estimate_;
  const auto it = history_.find(job.user);
  if (it == history_.end() || it->second.size() < k_) {
    return std::max(1.0, estimate);
  }
  double sum = 0.0;
  for (const double rt : it->second) sum += rt;
  const double prediction = sum / static_cast<double>(it->second.size());
  // Cap at the estimate (kill limit) when the trace provides one.
  const double capped = job.estimate > 0.0 ? std::min(prediction, job.estimate) : prediction;
  return std::max(1.0, capped);
}

void TsafrirPredictor::observe_completion(const workload::Job& job) {
  auto& window = history_[job.user];
  window.push_back(job.runtime);
  while (window.size() > k_) window.pop_front();
}

std::string TsafrirPredictor::name() const {
  return "tsafrir-knn(k=" + std::to_string(k_) + ")";
}

std::unique_ptr<RuntimePredictor> make_tsafrir(std::size_t k, double default_estimate) {
  return std::make_unique<TsafrirPredictor>(k, default_estimate);
}

}  // namespace psched::predict
