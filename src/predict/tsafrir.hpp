#pragma once
// The Tsafrir-Etsion-Feitelson system-generated predictor (TPDS'07), as used
// by the paper: predict a job's runtime as the average runtime of the same
// user's k most recently *completed* jobs (k = 2, the authors' recommended
// window). Until a user has k completions, fall back to the user estimate —
// or, when the trace carries no estimate, to a configurable default. The
// fallback must never be the job's actual runtime: that would quietly turn
// the cold-start path into a perfect-information oracle and inflate the
// predictor's measured accuracy on estimate-less traces.
//
// The prediction is additionally capped at the user estimate when one is
// present — estimates are treated as kill limits, so a longer prediction is
// known to be impossible.

#include <cstddef>
#include <deque>
#include <string>
#include <unordered_map>

#include "predict/predictor.hpp"

namespace psched::predict {

class TsafrirPredictor final : public RuntimePredictor {
 public:
  /// Cold-start fallback when a job has neither history nor a user
  /// estimate: one hour, a common trace-wide median scale. Deliberately
  /// information-free.
  static constexpr double kDefaultEstimate = 3600.0;

  explicit TsafrirPredictor(std::size_t k = 2,
                            double default_estimate = kDefaultEstimate);

  [[nodiscard]] double predict(const workload::Job& job) const override;
  void observe_completion(const workload::Job& job) override;
  [[nodiscard]] std::string name() const override;

  /// Number of users with at least one completed job.
  [[nodiscard]] std::size_t known_users() const noexcept { return history_.size(); }

 private:
  std::size_t k_;
  double default_estimate_;
  std::unordered_map<UserId, std::deque<double>> history_;  // newest at back
};

[[nodiscard]] std::unique_ptr<RuntimePredictor> make_tsafrir(
    std::size_t k = 2, double default_estimate = TsafrirPredictor::kDefaultEstimate);

}  // namespace psched::predict
