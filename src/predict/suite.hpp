#pragma once
// Additional system-generated runtime predictors beyond the paper's
// Tsafrir k-NN, plus an accuracy-evaluation harness. The paper points to
// Matsunaga & Fortes for more sophisticated predictors and reports that
// the portfolio is robust to prediction error; this suite lets that claim
// be tested across a spectrum of predictor qualities (see
// bench_predictors).

#include <memory>
#include <unordered_map>

#include "predict/predictor.hpp"
#include "workload/trace.hpp"

namespace psched::predict {

/// Predicts the runtime of the user's most recently completed job
/// (k-NN with k = 1; noisier than Tsafrir's k = 2).
class LastRuntimePredictor final : public RuntimePredictor {
 public:
  [[nodiscard]] double predict(const workload::Job& job) const override;
  void observe_completion(const workload::Job& job) override;
  [[nodiscard]] std::string name() const override { return "last-runtime"; }

 private:
  std::unordered_map<UserId, double> last_;
};

/// Predicts the running mean of all completed runtimes of the user
/// (infinite-window k-NN; slow to adapt, low variance).
class RunningMeanPredictor final : public RuntimePredictor {
 public:
  [[nodiscard]] double predict(const workload::Job& job) const override;
  void observe_completion(const workload::Job& job) override;
  [[nodiscard]] std::string name() const override { return "running-mean"; }

 private:
  struct State {
    double mean = 0.0;
    std::size_t count = 0;
  };
  std::unordered_map<UserId, State> state_;
};

/// Exponentially weighted moving average per user:
///   estimate <- alpha * runtime + (1 - alpha) * estimate.
class EwmaPredictor final : public RuntimePredictor {
 public:
  explicit EwmaPredictor(double alpha = 0.5);

  [[nodiscard]] double predict(const workload::Job& job) const override;
  void observe_completion(const workload::Job& job) override;
  [[nodiscard]] std::string name() const override;

 private:
  double alpha_;
  std::unordered_map<UserId, double> ewma_;
};

[[nodiscard]] std::unique_ptr<RuntimePredictor> make_last_runtime();
[[nodiscard]] std::unique_ptr<RuntimePredictor> make_running_mean();
[[nodiscard]] std::unique_ptr<RuntimePredictor> make_ewma(double alpha = 0.5);

/// Offline predictor evaluation: replay the trace in submission order,
/// feeding each completion back as soon as it happens (a job completing
/// before a later job's submission is observed before that prediction).
struct AccuracyReport {
  std::size_t jobs = 0;
  /// Mean of min(pred, actual) / max(pred, actual) — Tsafrir's accuracy
  /// measure, 1 = perfect (the literature reports ~0.5 for k-NN on PWA
  /// traces).
  double mean_accuracy = 0.0;
  double mean_abs_error = 0.0;        ///< seconds
  double overestimate_fraction = 0.0; ///< fraction with pred > actual
  double underestimate_fraction = 0.0;
};

[[nodiscard]] AccuracyReport evaluate_predictor(const workload::Trace& trace,
                                                RuntimePredictor& predictor);

}  // namespace psched::predict
