#include "predict/predictor.hpp"

#include <algorithm>

namespace psched::predict {

namespace {
// Predictions must be strictly positive: slowdown/priority formulas divide
// by them. One second is far below every trace's runtime resolution.
constexpr double kMinPrediction = 1.0;
}  // namespace

double PerfectPredictor::predict(const workload::Job& job) const {
  return std::max(kMinPrediction, job.runtime);
}

double UserEstimatePredictor::predict(const workload::Job& job) const {
  // Fall back to actual runtime when a trace carries no estimate.
  const double est = job.estimate > 0.0 ? job.estimate : job.runtime;
  return std::max(kMinPrediction, est);
}

std::unique_ptr<RuntimePredictor> make_perfect() {
  return std::make_unique<PerfectPredictor>();
}

std::unique_ptr<RuntimePredictor> make_user_estimate() {
  return std::make_unique<UserEstimatePredictor>();
}

}  // namespace psched::predict
