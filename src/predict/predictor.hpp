#pragma once
// Job runtime prediction (paper Section 3.2). Policies that consume runtimes
// (ODE, ODX, LXF, WFP3, UNICEF) and the online simulator never see actual
// runtimes directly; they go through a RuntimePredictor so the three
// information regimes of the evaluation (accurate / predicted / user
// estimates) are a configuration switch.

#include <memory>
#include <string>

#include "workload/job.hpp"

namespace psched::predict {

class RuntimePredictor {
 public:
  virtual ~RuntimePredictor() = default;

  /// Predicted runtime (seconds, > 0) for a job that has not finished yet.
  [[nodiscard]] virtual double predict(const workload::Job& job) const = 0;

  /// Feed back a completed job so learning predictors can adapt.
  virtual void observe_completion(const workload::Job& /*job*/) {}

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Oracle: returns the actual runtime (the paper's "accurate runtime" mode).
class PerfectPredictor final : public RuntimePredictor {
 public:
  [[nodiscard]] double predict(const workload::Job& job) const override;
  [[nodiscard]] std::string name() const override { return "perfect"; }
};

/// Returns the user-provided estimate (the paper's "user estimated runtime"
/// mode; estimates are typically far larger than actual runtimes).
class UserEstimatePredictor final : public RuntimePredictor {
 public:
  [[nodiscard]] double predict(const workload::Job& job) const override;
  [[nodiscard]] std::string name() const override { return "user-estimate"; }
};

/// Factory helpers.
[[nodiscard]] std::unique_ptr<RuntimePredictor> make_perfect();
[[nodiscard]] std::unique_ptr<RuntimePredictor> make_user_estimate();

}  // namespace psched::predict
