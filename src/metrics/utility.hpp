#pragma once
// The paper's compound utility function (Section 2):
//
//     U = kappa * (RJ / RV)^alpha * (1 / BSD)^beta
//
// where RJ is the total runtime of all jobs (processor-seconds of real
// work), RV the total charged runtime of rented VMs (VM-seconds, hours
// rounded up — i.e. the monetary cost), and BSD the average bounded job
// slowdown. alpha weights cost-efficiency, beta weights job urgency;
// the paper uses kappa=100 and alpha=beta=1 unless sweeping (Figure 6).

#include <string>

namespace psched::metrics {

struct UtilityParams {
  double kappa = 100.0;
  double alpha = 1.0;
  double beta = 1.0;

  [[nodiscard]] std::string label() const;
};

/// Evaluate U. Degenerate inputs (no work done, zero cost, BSD < 1) clamp
/// to well-defined values so policy ranking never sees NaN/inf: utilization
/// RJ/RV is clamped to [0, 1] (work cannot exceed paid capacity, but guard
/// rounding), BSD to [1, inf), and work done at zero incremental cost
/// (RJ > 0, RV == 0 — it fit into already-paid VM time) counts as
/// utilization 1.
[[nodiscard]] double utility(const UtilityParams& params, double rj_proc_seconds,
                             double rv_charged_seconds, double avg_bounded_slowdown);

}  // namespace psched::metrics
