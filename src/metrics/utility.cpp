#include "metrics/utility.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace psched::metrics {

std::string UtilityParams::label() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "U(kappa=%g, alpha=%g, beta=%g)", kappa, alpha, beta);
  return buf;
}

double utility(const UtilityParams& params, double rj_proc_seconds,
               double rv_charged_seconds, double avg_bounded_slowdown) {
  double utilization = 0.0;
  if (rj_proc_seconds > 0.0) {
    // Work done at zero *new* cost (it fit entirely into already-paid VM
    // time) is perfectly efficient, not worthless.
    utilization = rv_charged_seconds > 0.0
                      ? std::clamp(rj_proc_seconds / rv_charged_seconds, 0.0, 1.0)
                      : 1.0;
  }
  const double bsd = std::max(1.0, avg_bounded_slowdown);
  // 0^0 == 1 by std::pow, so alpha == 0 correctly ignores utilization even
  // when no VM was ever rented.
  return params.kappa * std::pow(utilization, params.alpha) *
         std::pow(1.0 / bsd, params.beta);
}

}  // namespace psched::metrics
