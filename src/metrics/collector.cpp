#include "metrics/collector.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace psched::metrics {

MetricsCollector::MetricsCollector(double slowdown_bound) : bound_(slowdown_bound) {
  PSCHED_ASSERT(slowdown_bound > 0.0);
}

void MetricsCollector::record(const JobRecord& record) {
  PSCHED_ASSERT_MSG(record.start >= record.submit, "job started before submission");
  PSCHED_ASSERT_MSG(record.eligible >= record.submit, "eligible before submission");
  PSCHED_ASSERT_MSG(record.start >= record.eligible, "job started before eligible");
  PSCHED_ASSERT_MSG(record.finish >= record.start, "job finished before it started");
  const double bsd = workload::bounded_slowdown(record.wait(), record.runtime, bound_);
  slowdowns_.add(bsd);
  waits_.add(record.wait());
  rj_ += static_cast<double>(record.procs) * record.runtime;
  makespan_ = std::max(makespan_, record.finish);
  if (record.workflow != workload::kNoWorkflow) {
    const auto [it, inserted] = workflows_.try_emplace(
        record.workflow, WorkflowSpan{record.submit, record.finish});
    if (!inserted) {
      it->second.first_submit = std::min(it->second.first_submit, record.submit);
      it->second.last_finish = std::max(it->second.last_finish, record.finish);
    }
  }
  if (keep_records_) records_.push_back(record);
}

RunMetrics MetricsCollector::finalize() const {
  RunMetrics m;
  m.jobs = slowdowns_.count();
  m.avg_bounded_slowdown = m.jobs ? slowdowns_.mean() : 1.0;
  m.max_bounded_slowdown = m.jobs ? slowdowns_.max() : 1.0;
  m.avg_wait = waits_.mean();
  m.rj_proc_seconds = rj_;
  m.rv_charged_seconds = rv_seconds_;
  m.makespan = makespan_;
  m.failures = failures_;
  m.pricing = pricing_;
  m.workflows = workflows_.size();
  // Aggregate through an id-sorted snapshot: the average is a floating-point
  // sum, so folding in hash-table order would make the reported metric
  // depend on the map's hash state (psched-lint D2; pinned by the
  // HashStateDoesNotLeakIntoMetrics regression test).
  // psched-lint: order-insensitive(snapshot is sorted by workflow id below)
  std::vector<std::pair<workload::WorkflowId, WorkflowSpan>> spans(workflows_.begin(),
                                                                   workflows_.end());
  std::sort(spans.begin(), spans.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [id, span] : spans) {
    const double ms = span.last_finish - span.first_submit;
    m.avg_workflow_makespan += ms;
    m.max_workflow_makespan = std::max(m.max_workflow_makespan, ms);
  }
  if (m.workflows > 0)
    m.avg_workflow_makespan /= static_cast<double>(m.workflows);
  return m;
}

void MetricsCollector::capture_digest(util::StateDigest& digest) const {
  digest.add_size("metrics.jobs", slowdowns_.count());
  digest.add_double("metrics.slowdown_mean", slowdowns_.mean());
  digest.add_double("metrics.slowdown_var", slowdowns_.variance());
  digest.add_double("metrics.slowdown_min", slowdowns_.min());
  digest.add_double("metrics.slowdown_max", slowdowns_.max());
  digest.add_double("metrics.slowdown_sum", slowdowns_.sum());
  digest.add_double("metrics.wait_mean", waits_.mean());
  digest.add_double("metrics.wait_var", waits_.variance());
  digest.add_double("metrics.wait_sum", waits_.sum());
  digest.add_double("metrics.rj", rj_);
  digest.add_double("metrics.rv_seconds", rv_seconds_);
  digest.add_double("metrics.makespan", makespan_);
  digest.add_size("metrics.records", records_.size());
  util::UnorderedFold workflows;
  // psched-lint: order-insensitive(UnorderedFold is commutative)
  for (const auto& [id, span] : workflows_) {
    std::uint64_t h = util::digest_mix(0, static_cast<std::uint64_t>(id));
    h = util::digest_mix(h, span.first_submit);
    h = util::digest_mix(h, span.last_finish);
    workflows.absorb(h);
  }
  digest.add_fold("metrics.workflows", workflows);
  digest.add_size("metrics.failures.job_kills", failures_.job_kills);
  digest.add_size("metrics.failures.jobs_killed_final", failures_.jobs_killed_final);
  digest.add_double("metrics.failures.wasted", failures_.wasted_proc_seconds);
}

}  // namespace psched::metrics
