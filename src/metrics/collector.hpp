#pragma once
// Collects per-job scheduling outcomes and the fleet cost, and reduces them
// to the paper's performance space Y: average bounded slowdown (BSD), total
// job runtime (RJ), total charged VM time (RV == cost), utilization, and
// the compound utility U.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "metrics/utility.hpp"
#include "util/state_digest.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"
#include "workload/job.hpp"

namespace psched::metrics {

/// Outcome of one finished job.
struct JobRecord {
  JobId id = kInvalidJob;
  SimTime submit = 0.0;
  SimTime eligible = 0.0;  ///< >= submit; when all dependencies completed
                           ///< (== submit for independent jobs)
  SimTime start = 0.0;
  SimTime finish = 0.0;
  int procs = 1;
  double runtime = 0.0;
  workload::WorkflowId workflow = workload::kNoWorkflow;

  /// Waiting time from eligibility (for workflow tasks, time spent ready
  /// but unscheduled; identical to submit-based wait for independent jobs).
  [[nodiscard]] double wait() const noexcept { return start - eligible; }
  [[nodiscard]] double response() const noexcept { return finish - submit; }
};

/// Failure/resilience aggregates (engine-filled; every field stays zero
/// when the failure model is off, see cloud/failure.hpp).
struct FailureStats {
  std::size_t boot_failures = 0;        ///< leases terminated at boot
  std::size_t vm_crashes = 0;           ///< leases terminated mid-lease
  std::size_t api_rejected_leases = 0;  ///< lease calls lost to outages
  std::size_t api_rejected_releases = 0;///< release calls lost to outages
  std::size_t lease_retries = 0;        ///< lease attempts re-issued after backoff
  std::size_t job_kills = 0;            ///< job slices killed by crashes
  std::size_t job_resubmissions = 0;    ///< kills that were re-queued
  std::size_t jobs_killed_final = 0;    ///< jobs dropped after max resubmits
                                        ///< (plus their dead workflow deps)
  double wasted_proc_seconds = 0.0;     ///< work lost to kills (not in RJ)
  double failed_vm_charged_seconds = 0.0;  ///< paid-but-wasted compute:
                                           ///< charges of crashed/boot-failed leases

  [[nodiscard]] bool any() const noexcept {
    return boot_failures > 0 || vm_crashes > 0 || api_rejected_leases > 0 ||
           api_rejected_releases > 0 || lease_retries > 0 || job_kills > 0 ||
           jobs_killed_final > 0;
  }
};

/// Pricing/market aggregates (engine-filled; every field stays zero when
/// the pricing layer is off, see cloud/pricing.hpp and DESIGN.md §12).
struct PricingStats {
  std::size_t families = 0;              ///< VM family count in the config
  std::size_t on_demand_leases = 0;      ///< leases billed at the base price
  std::size_t spot_leases = 0;           ///< discounted, revocable leases
  std::size_t reserved_leases = 0;       ///< leases drawn from the commitment
  std::size_t spot_warnings = 0;         ///< revocation warnings delivered
  std::size_t spot_revocations = 0;      ///< spot leases revoked by the market
  double spend_on_demand_dollars = 0.0;  ///< settled on-demand spend
  double spend_spot_dollars = 0.0;       ///< settled spot spend
  double spend_reserved_dollars = 0.0;   ///< up-front commitment cost
  double spot_savings_dollars = 0.0;     ///< on-demand-equivalent minus spot
  double revoked_charged_seconds = 0.0;  ///< paid time lost to revocations

  [[nodiscard]] double total_spend_dollars() const noexcept {
    return spend_on_demand_dollars + spend_spot_dollars + spend_reserved_dollars;
  }
  [[nodiscard]] bool any() const noexcept {
    return on_demand_leases > 0 || spot_leases > 0 || reserved_leases > 0 ||
           spot_warnings > 0 || spot_revocations > 0 ||
           total_spend_dollars() > 0.0;
  }
};

/// Aggregated result of a (real or simulated) run.
struct RunMetrics {
  std::size_t jobs = 0;
  double avg_bounded_slowdown = 1.0;
  double max_bounded_slowdown = 1.0;
  double avg_wait = 0.0;
  double rj_proc_seconds = 0.0;   ///< RJ: total real work
  double rv_charged_seconds = 0.0;///< RV: charged VM time (cost)
  double makespan = 0.0;          ///< last finish time

  // Workflow aggregates (0 when the trace has no workflow tasks).
  std::size_t workflows = 0;
  double avg_workflow_makespan = 0.0;  ///< mean(last finish - first submit)
  double max_workflow_makespan = 0.0;

  // Failure/resilience aggregates (all zero for failure-off runs).
  FailureStats failures;

  // Pricing/market aggregates (all zero for pricing-off runs).
  PricingStats pricing;

  [[nodiscard]] double charged_hours() const noexcept {
    return rv_charged_seconds / kSecondsPerHour;
  }
  /// Goodput: proc-seconds of completed useful work. RJ only counts
  /// finished jobs, so work a crash destroyed (failures.wasted_proc_seconds)
  /// is already excluded.
  [[nodiscard]] double goodput_proc_seconds() const noexcept {
    return rj_proc_seconds;
  }
  /// Paid-but-wasted compute: charged seconds on leases the cloud
  /// terminated (boot failures + crashes).
  [[nodiscard]] double paid_wasted_seconds() const noexcept {
    return failures.failed_vm_charged_seconds;
  }
  [[nodiscard]] double utilization() const noexcept {
    return rv_charged_seconds > 0.0 ? rj_proc_seconds / rv_charged_seconds : 0.0;
  }
  [[nodiscard]] double utility(const UtilityParams& params) const {
    return metrics::utility(params, rj_proc_seconds, rv_charged_seconds,
                            avg_bounded_slowdown);
  }
};

class MetricsCollector {
 public:
  /// `slowdown_bound` is the bounded-slowdown runtime floor (paper: 10 s).
  explicit MetricsCollector(double slowdown_bound = 10.0);

  void record(const JobRecord& record);

  /// Charged VM time is reported by the cloud provider at the end of a run.
  void set_charged_seconds(double rv_seconds) noexcept { rv_seconds_ = rv_seconds; }

  /// Failure/resilience aggregates, reported by the engine at the end of a
  /// run (defaults to all-zero for failure-off runs).
  void set_failure_stats(const FailureStats& stats) noexcept { failures_ = stats; }

  /// Pricing/market aggregates, reported by the engine at the end of a run
  /// (defaults to all-zero for pricing-off runs).
  void set_pricing_stats(const PricingStats& stats) noexcept { pricing_ = stats; }

  [[nodiscard]] std::size_t jobs() const noexcept { return slowdowns_.count(); }
  [[nodiscard]] RunMetrics finalize() const;

  /// Raw per-job records (kept only when enabled; benches use them for
  /// distributional analyses).
  void keep_records(bool keep) noexcept { keep_records_ = keep; }
  [[nodiscard]] const std::vector<JobRecord>& records() const noexcept { return records_; }

  /// Checkpoint support (DESIGN.md §14): fold every accumulator bit-exactly.
  /// The workflow-span map is unordered, so it goes through the
  /// order-insensitive fold (psched-lint D2).
  void capture_digest(util::StateDigest& digest) const;

 private:
  struct WorkflowSpan {
    SimTime first_submit = 0.0;
    SimTime last_finish = 0.0;
  };

  double bound_;
  bool keep_records_ = false;
  FailureStats failures_;
  PricingStats pricing_;
  util::RunningStats slowdowns_;
  util::RunningStats waits_;
  double rj_ = 0.0;
  double rv_seconds_ = 0.0;
  double makespan_ = 0.0;
  std::vector<JobRecord> records_;
  std::unordered_map<workload::WorkflowId, WorkflowSpan> workflows_;
};

}  // namespace psched::metrics
