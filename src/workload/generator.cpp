#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/assert.hpp"

namespace psched::workload {

namespace {
constexpr double kMonth = 30.0 * 24.0 * 3600.0;

/// Round `x` up to a multiple of `step`.
double round_up(double x, double step) {
  return std::ceil(x / step) * step;
}
}  // namespace

TraceGenerator::TraceGenerator(GeneratorConfig config) : config_(std::move(config)) {
  PSCHED_ASSERT(config_.system_cpus > 0);
  PSCHED_ASSERT(config_.duration_days > 0.0);
  PSCHED_ASSERT(config_.jobs_per_month > 0.0);
  PSCHED_ASSERT(config_.target_load > 0.0 && config_.target_load < 1.0);
  PSCHED_ASSERT(config_.num_users >= 1);
  PSCHED_ASSERT(config_.frac_wide >= 0.0 && config_.frac_wide < 1.0);
  PSCHED_ASSERT(config_.max_procs <= config_.system_cpus);
}

Trace TraceGenerator::generate(std::uint64_t seed) const {
  const GeneratorConfig& c = config_;
  util::Rng root(seed);
  util::Rng arrival_rng = root.split();
  util::Rng size_rng = root.split();
  util::Rng calib_rng = root.split();
  util::Rng regime_rng = root.split();

  const double horizon = c.duration_days * 24.0 * 3600.0;
  const double base_rate = c.jobs_per_month / kMonth;  // jobs per second

  // Serial jobs are drawn explicitly (the fraction drifts per regime), so
  // the width model only covers the parallel (power-of-two) part.
  ParallelismModel widths(0.0, c.parallel_decay, c.max_procs);
  // Split the total runtime spread into within-user and across-user parts
  // (see GeneratorConfig): total log-variance is preserved, so the mean —
  // and the load calibration below — are unaffected.
  const double sigma_within = std::min(c.user_runtime_spread, c.runtime_sigma);
  const double sigma_across = std::sqrt(
      std::max(0.0, c.runtime_sigma * c.runtime_sigma - sigma_within * sigma_within));
  RuntimeModel runtimes(std::log(3600.0), std::max(sigma_within, 0.01), c.runtime_min,
                        c.runtime_max);
  // Mean multiplier contributed by the across-user scale, E[exp(N(0,s))].
  const double across_mean = std::exp(0.5 * sigma_across * sigma_across);

  // Calibrate the runtime scale so that on the *cleaned* trace
  //   base_rate * E[procs * runtime] = target_load * system_cpus.
  // E[procs] and E[runtime] are independent by construction. The clamped
  // log-normal mean is not analytic, so solve by fixed-point on the scale
  // factor (monotone; 3 rounds is plenty for calibration tolerance).
  const double desired_work = c.target_load * c.system_cpus / base_rate;
  const double mean_procs =
      c.serial_fraction + (1.0 - c.serial_fraction) * widths.mean();
  RuntimeModel calibrated = runtimes;
  for (int round = 0; round < 3; ++round) {
    const double mean_rt = calibrated.estimate_mean(calib_rng.split()) * across_mean;
    const double factor = desired_work / (mean_procs * mean_rt);
    calibrated = calibrated.scaled(factor);
  }

  // Persistent per-user runtime scale (drawn deterministically from the
  // seed and the user id, independent of draw order).
  std::unordered_map<UserId, double> user_scale;
  const auto scale_of = [&](UserId user) {
    const auto it = user_scale.find(user);
    if (it != user_scale.end()) return it->second;
    util::Rng user_rng(seed ^ (0x9E3779B97F4A7C15ULL *
                               (static_cast<std::uint64_t>(user) + 0x51ED2701ULL)));
    const double scale = std::exp(user_rng.normal(0.0, sigma_across));
    user_scale.emplace(user, scale);
    return scale;
  };

  ArrivalProcess arrivals(
      base_rate, DiurnalProfile(c.diurnal_amplitude, c.weekend_factor),
      BurstProcess(c.burst_multiplier, c.burst_on_mean, c.burst_off_mean));
  const std::vector<SimTime> times = arrivals.sample(horizon, arrival_rng);

  // Per-regime drift of the job mix (see GeneratorConfig::regime_days).
  struct Regime {
    double runtime_scale = 1.0;
    double serial_fraction;
  };
  std::vector<Regime> regimes;
  const bool drifting = c.regime_days > 0.0 && c.regime_strength > 0.0;
  const double regime_seconds = c.regime_days * 24.0 * 3600.0;
  const auto regime_count =
      drifting ? static_cast<std::size_t>(horizon / regime_seconds) + 1 : 1;
  for (std::size_t k = 0; k < regime_count; ++k) {
    Regime regime;
    regime.serial_fraction = c.serial_fraction;
    if (drifting) {
      regime.runtime_scale = std::exp(regime_rng.normal(0.0, c.regime_strength));
      regime.serial_fraction = std::clamp(
          c.serial_fraction + regime_rng.uniform(-c.regime_strength / 2.0,
                                                 c.regime_strength / 2.0),
          0.0, 1.0);
    }
    regimes.push_back(regime);
  }
  // Serial jobs stay serial across regimes when configured that way.
  if (c.serial_fraction >= 1.0)
    for (Regime& regime : regimes) regime.serial_fraction = 1.0;

  std::vector<Job> jobs;
  jobs.reserve(times.size());
  JobId next_id = 0;
  for (const SimTime t : times) {
    const Regime& regime =
        regimes[drifting ? std::min(regimes.size() - 1,
                                    static_cast<std::size_t>(t / regime_seconds))
                         : 0];
    Job j;
    j.id = next_id++;
    j.submit = t;
    j.user = static_cast<UserId>(size_rng.zipf(c.num_users, c.user_zipf_s) - 1);
    j.runtime = std::clamp(
        calibrated.sample(size_rng) * scale_of(j.user) * regime.runtime_scale,
        c.runtime_min, c.runtime_max);
    if (c.frac_wide > 0.0 && size_rng.bernoulli(c.frac_wide)) {
      // A wide job the paper's cleaning step removes (procs > max_procs).
      j.procs = static_cast<int>(
          size_rng.uniform_int(c.max_procs + 1, c.system_cpus));
    } else if (size_rng.bernoulli(regime.serial_fraction)) {
      j.procs = 1;
    } else {
      j.procs = widths.sample(size_rng);
    }
    const double blowup = std::pow(10.0, size_rng.uniform(0.0, c.est_exponent));
    j.estimate = std::min(c.runtime_max, round_up(j.runtime * blowup, c.est_round));
    jobs.push_back(j);
  }

  if (c.calibrate_exact && !jobs.empty()) {
    // One global runtime rescale so the slice's offered load (over jobs
    // narrow enough to survive cleaning) hits target_load exactly. The
    // factor is near 1 — the Monte-Carlo calibration above already matched
    // the expectation — so the runtime distribution's shape is preserved.
    double realized_work = 0.0;
    SimTime last_submit = 0.0;
    for (const Job& j : jobs) {
      if (j.procs <= c.max_procs) realized_work += work_of(j);
      last_submit = std::max(last_submit, j.submit);
    }
    const double desired_work =
        c.target_load * static_cast<double>(c.system_cpus) * last_submit;
    if (realized_work > 0.0 && desired_work > 0.0) {
      const double factor = desired_work / realized_work;
      for (Job& j : jobs) {
        j.runtime *= factor;
        j.estimate = std::max(j.estimate * factor, j.runtime);
      }
    }
  }
  return Trace(c.name, c.system_cpus, std::move(jobs));
}

// ---------------------------------------------------------------------------
// Archetypes. Rates and loads from the paper's Table 1; arrival shapes from
// Figure 3 (KTH/SDSC stable; DAS2/LPC bursty, DAS2 quiet during work hours,
// LPC busier); job mixes from the PWA descriptions of the source systems.
// ---------------------------------------------------------------------------

GeneratorConfig kth_sp2_like(double duration_days) {
  GeneratorConfig c;
  c.name = "KTH-SP2";
  c.system_cpus = 100;
  c.duration_days = duration_days;
  c.jobs_per_month = 28480.0 / 11.0;  // Table 1: 28,480 jobs in 11 months
  c.target_load = 0.704;
  c.diurnal_amplitude = 0.6;
  c.weekend_factor = 0.6;
  c.burst_multiplier = 1.0;  // stable arrivals
  c.serial_fraction = 0.25;
  c.parallel_decay = 0.65;
  c.frac_wide = 0.011;  // Table 1: 98.9% of jobs <= 64 procs
  c.runtime_sigma = 1.9;
  c.num_users = 200;
  return c;
}

GeneratorConfig sdsc_sp2_like(double duration_days) {
  GeneratorConfig c;
  c.name = "SDSC-SP2";
  c.system_cpus = 128;
  c.duration_days = duration_days;
  c.jobs_per_month = 53911.0 / 24.0;
  c.target_load = 0.835;
  c.diurnal_amplitude = 0.55;
  c.weekend_factor = 0.7;
  c.burst_multiplier = 2.0;  // mildly bursty
  c.burst_on_mean = 1200.0;
  c.burst_off_mean = 40000.0;
  c.serial_fraction = 0.3;
  c.parallel_decay = 0.7;
  c.frac_wide = 0.007;  // 99.3% <= 64
  c.runtime_sigma = 2.1;
  c.num_users = 400;
  return c;
}

GeneratorConfig das2_fs0_like(double duration_days) {
  GeneratorConfig c;
  c.name = "DAS2-fs0";
  c.system_cpus = 144;
  c.duration_days = duration_days;
  c.jobs_per_month = 215638.0 / 12.0;
  c.target_load = 0.149;
  // Figure 3: few jobs during normal hours, strong bursts.
  c.diurnal_amplitude = 0.8;
  c.weekend_factor = 0.4;
  c.burst_multiplier = 12.0;
  c.burst_on_mean = 600.0;
  c.burst_off_mean = 25000.0;
  c.serial_fraction = 0.4;  // small parallel research jobs
  c.parallel_decay = 0.45;
  c.frac_wide = 0.04;  // 96.0% <= 64
  c.runtime_sigma = 2.4;  // mostly very short, heavy tail
  c.runtime_min = 1.0;
  c.num_users = 300;
  return c;
}

GeneratorConfig lpc_egee_like(double duration_days) {
  GeneratorConfig c;
  c.name = "LPC-EGEE";
  c.system_cpus = 140;
  c.duration_days = duration_days;
  c.jobs_per_month = 214322.0 / 9.0;
  c.target_load = 0.208;
  // Figure 3: bursty, with more work-hour activity than DAS2.
  c.diurnal_amplitude = 0.5;
  c.weekend_factor = 0.8;
  c.burst_multiplier = 7.0;
  c.burst_on_mean = 1800.0;
  c.burst_off_mean = 18000.0;
  c.serial_fraction = 1.0;  // EGEE grid jobs are sequential (100% <= 64)
  c.frac_wide = 0.0;
  c.runtime_sigma = 1.6;
  c.runtime_min = 5.0;
  c.num_users = 250;
  return c;
}

std::vector<GeneratorConfig> paper_archetypes(double duration_days) {
  return {kth_sp2_like(duration_days), sdsc_sp2_like(duration_days),
          das2_fs0_like(duration_days), lpc_egee_like(duration_days)};
}

std::vector<Trace> paper_traces(double duration_days, std::uint64_t seed, int max_procs) {
  std::vector<Trace> traces;
  util::Rng root(seed);
  for (const GeneratorConfig& c : paper_archetypes(duration_days)) {
    const TraceGenerator gen(c);
    traces.push_back(gen.generate(root.next_u64()).cleaned(max_procs));
  }
  return traces;
}

}  // namespace psched::workload
