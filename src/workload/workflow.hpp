#pragma once
// Scientific-workflow workload generation — the substrate for the paper's
// future-work item #4 ("we are adapting portfolio scheduling for the
// execution of scientific workflows"). A workflow is a DAG of tasks
// expressed through Job::deps; the engine releases a task to the queue
// when its dependencies complete.
//
// Three canonical DAG shapes from the workflow-scheduling literature:
//   * kChain     — sequential pipelines (e.g. genomics stages);
//   * kForkJoin  — an entry task fans out to N parallel tasks that join
//                  into an exit task (e.g. parameter sweeps with a merge);
//   * kLayered   — L levels, each task depending on 1..k random tasks of
//                  the previous level (Montage-like irregular DAGs).

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/distributions.hpp"
#include "workload/trace.hpp"

namespace psched::workload {

enum class DagShape {
  kChain,
  kForkJoin,
  kLayered,
};

struct WorkflowConfig {
  std::string name = "workflows";
  int system_cpus = 128;
  double duration_days = 2.0;
  double workflows_per_day = 96.0;     ///< workflow submission rate

  // Shape mix: probability weights for {chain, fork-join, layered}.
  double chain_weight = 1.0;
  double forkjoin_weight = 1.0;
  double layered_weight = 1.0;

  int min_tasks = 4;
  int max_tasks = 24;          ///< tasks per workflow, uniform
  int layers_max = 4;          ///< kLayered: number of levels (>= 2)
  int max_fanin = 3;           ///< kLayered: dependencies per task

  // Task sizes.
  double task_runtime_mu = std::log(300.0);  ///< log-normal median 300 s
  double task_runtime_sigma = 1.0;
  double runtime_min = 5.0;
  double runtime_max = 6.0 * 3600.0;
  double serial_fraction = 0.7;  ///< P(task needs 1 VM)
  int max_procs = 16;            ///< widest task

  // User estimates, as in TraceGenerator.
  double est_exponent = 1.5;
  double est_round = 300.0;
  int num_users = 64;

  // Arrival shape.
  double diurnal_amplitude = 0.4;
  double weekend_factor = 0.8;
};

/// Generate a workflow trace: every task is a Job with deps/workflow set;
/// all tasks of a workflow share the workflow's submission time (the DAG
/// is known at submission; eligibility is what staggers execution).
/// Deterministic in (config, seed).
[[nodiscard]] Trace generate_workflows(const WorkflowConfig& config, std::uint64_t seed);

/// Structural check: deps reference in-trace earlier-or-equal-submit jobs,
/// no self/forward references, DAG per workflow (no cycles). Returns an
/// empty string when valid.
[[nodiscard]] std::string validate_workflows(const Trace& trace);

}  // namespace psched::workload
