#pragma once
// A workload trace: an ordered sequence of jobs plus system metadata, with
// the cleaning rules from the paper (Section 5.2) and the Table-1 summary
// statistics.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace psched::workload {

class Trace {
 public:
  Trace() = default;
  Trace(std::string name, int system_cpus, std::vector<Job> jobs);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int system_cpus() const noexcept { return system_cpus_; }
  [[nodiscard]] const std::vector<Job>& jobs() const noexcept { return jobs_; }
  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs_.empty(); }

  /// Trace duration: last submit time (seconds). 0 for empty traces.
  [[nodiscard]] SimTime duration() const noexcept;

  /// Total work (sum of procs * runtime) in processor-seconds.
  [[nodiscard]] double total_work() const noexcept;

  /// Offered load on the original system: total_work / (cpus * duration).
  [[nodiscard]] double load() const noexcept;

  /// Number of jobs requesting at most `procs` processors.
  [[nodiscard]] std::size_t count_at_most(int procs) const noexcept;

  /// A sub-trace containing only jobs with submit < horizon_seconds,
  /// preserving name and system size. Used to scale experiments down.
  [[nodiscard]] Trace head(SimTime horizon_seconds) const;

  /// Paper cleaning rules: drop jobs with runtime <= 0 or procs <= 0, jobs
  /// wider than the original system, and jobs wider than `max_procs`
  /// (the paper keeps only jobs requesting up to 64 processors).
  [[nodiscard]] Trace cleaned(int max_procs = 64) const;

  struct Summary {
    std::string name;
    std::size_t total_jobs = 0;     ///< before the <=max_procs filter
    std::size_t kept_jobs = 0;      ///< after cleaning
    double kept_percent = 0.0;
    int cpus = 0;
    double months = 0.0;            ///< duration in 30-day months
    double load_percent = 0.0;
  };
  /// Table-1-style characteristics of a *raw* trace cleaned at `max_procs`.
  [[nodiscard]] Summary summarize(int max_procs = 64) const;

 private:
  std::string name_;
  int system_cpus_ = 0;
  std::vector<Job> jobs_;  // sorted by (submit, id)
};

/// Validates invariants the rest of the system relies on: jobs sorted by
/// submit time, positive runtimes/procs, estimates >= 0. Returns an empty
/// string when valid, else a description of the first violation.
[[nodiscard]] std::string validate(const Trace& trace);

/// Deal the trace's jobs round-robin (in trace order) into `shards`
/// sub-traces named "<name>#<i>". Submit order, system size, and job ids
/// are preserved, so sharding is deterministic and the shards partition the
/// source exactly — the multi-tenant harnesses (engine/tenant.hpp) use this
/// to split one workload across tenants. `shards` must be >= 1.
[[nodiscard]] std::vector<Trace> shard_round_robin(const Trace& trace,
                                                   std::size_t shards);

}  // namespace psched::workload
