#include "workload/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace psched::workload {

Trace::Trace(std::string name, int system_cpus, std::vector<Job> jobs)
    : name_(std::move(name)), system_cpus_(system_cpus), jobs_(std::move(jobs)) {
  std::stable_sort(jobs_.begin(), jobs_.end(), [](const Job& a, const Job& b) {
    if (a.submit != b.submit) return a.submit < b.submit;
    return a.id < b.id;
  });
}

SimTime Trace::duration() const noexcept {
  return jobs_.empty() ? 0.0 : jobs_.back().submit;
}

double Trace::total_work() const noexcept {
  double w = 0.0;
  for (const Job& j : jobs_) w += work_of(j);
  return w;
}

double Trace::load() const noexcept {
  const double d = duration();
  if (d <= 0.0 || system_cpus_ <= 0) return 0.0;
  return total_work() / (static_cast<double>(system_cpus_) * d);
}

std::size_t Trace::count_at_most(int procs) const noexcept {
  return static_cast<std::size_t>(std::count_if(
      jobs_.begin(), jobs_.end(), [procs](const Job& j) { return j.procs <= procs; }));
}

Trace Trace::head(SimTime horizon_seconds) const {
  std::vector<Job> kept;
  for (const Job& j : jobs_) {
    if (j.submit >= horizon_seconds) break;
    kept.push_back(j);
  }
  return Trace(name_, system_cpus_, std::move(kept));
}

Trace Trace::cleaned(int max_procs) const {
  std::vector<Job> kept;
  kept.reserve(jobs_.size());
  for (const Job& j : jobs_) {
    if (j.runtime <= 0.0 || j.procs <= 0) continue;
    if (system_cpus_ > 0 && j.procs > system_cpus_) continue;
    if (j.procs > max_procs) continue;
    kept.push_back(j);
  }
  return Trace(name_, system_cpus_, std::move(kept));
}

Trace::Summary Trace::summarize(int max_procs) const {
  Summary s;
  s.name = name_;
  s.total_jobs = jobs_.size();
  const Trace clean = cleaned(max_procs);
  s.kept_jobs = clean.size();
  s.kept_percent = jobs_.empty()
                       ? 0.0
                       : 100.0 * static_cast<double>(s.kept_jobs) /
                             static_cast<double>(s.total_jobs);
  s.cpus = system_cpus_;
  s.months = duration() / (30.0 * 24.0 * 3600.0);
  s.load_percent = 100.0 * load();
  return s;
}

std::string validate(const Trace& trace) {
  const auto& jobs = trace.jobs();
  char buf[160];
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    if (j.runtime <= 0.0) {
      std::snprintf(buf, sizeof buf, "job %zu has non-positive runtime", i);
      return buf;
    }
    if (j.procs <= 0) {
      std::snprintf(buf, sizeof buf, "job %zu has non-positive procs", i);
      return buf;
    }
    if (j.estimate < 0.0) {
      std::snprintf(buf, sizeof buf, "job %zu has negative estimate", i);
      return buf;
    }
    if (i > 0 && jobs[i - 1].submit > j.submit) {
      std::snprintf(buf, sizeof buf, "jobs %zu and %zu out of submit order", i - 1, i);
      return buf;
    }
  }
  return {};
}

std::vector<Trace> shard_round_robin(const Trace& trace, std::size_t shards) {
  PSCHED_ASSERT_MSG(shards >= 1, "shard_round_robin needs at least one shard");
  std::vector<std::vector<Job>> buckets(shards);
  for (auto& bucket : buckets) bucket.reserve(trace.size() / shards + 1);
  for (std::size_t i = 0; i < trace.size(); ++i)
    buckets[i % shards].push_back(trace.jobs()[i]);
  std::vector<Trace> out;
  out.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    out.emplace_back(trace.name() + '#' + std::to_string(s), trace.system_cpus(),
                     std::move(buckets[s]));
  return out;
}

}  // namespace psched::workload
