#pragma once
// Workload characterization beyond Table 1: distributional and temporal
// statistics of a trace, for validating generated workloads against their
// archetypes and for profiling user-supplied SWF traces.

#include <array>
#include <string>
#include <vector>

#include "workload/trace.hpp"

namespace psched::workload {

struct TraceProfile {
  std::string name;
  std::size_t jobs = 0;

  // Runtimes (seconds).
  double runtime_p50 = 0.0;
  double runtime_p90 = 0.0;
  double runtime_p99 = 0.0;
  double runtime_mean = 0.0;

  // Parallelism.
  double serial_fraction = 0.0;   ///< jobs with procs == 1
  double mean_procs = 0.0;
  int max_procs = 0;
  /// Count of jobs per power-of-two width bucket: index i covers
  /// widths in [2^i, 2^(i+1)).
  std::vector<std::size_t> width_histogram;

  // Arrival process.
  double jobs_per_day = 0.0;
  double fano_10min = 0.0;        ///< burstiness (variance/mean per 10 min)
  /// Mean arrival-rate multiplier per hour of day (24 entries, mean 1).
  std::array<double, 24> hourly_profile{};

  // User population.
  std::size_t users = 0;
  double top_user_share = 0.0;    ///< fraction of jobs by the busiest user

  // Estimates.
  double mean_estimate_blowup = 0.0;  ///< mean(estimate / runtime)
};

/// Compute the full profile of a trace. O(n log n).
[[nodiscard]] TraceProfile characterize(const Trace& trace);

/// Render a profile as a human-readable multi-line report.
[[nodiscard]] std::string to_string(const TraceProfile& profile);

}  // namespace psched::workload
