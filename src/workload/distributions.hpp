#pragma once
// Building blocks of the synthetic workload generator:
//  * DiurnalProfile  — deterministic daily/weekly rate modulation
//  * BurstProcess    — two-state Markov-modulated (on/off) rate multiplier
//  * ArrivalProcess  — non-homogeneous Poisson sampling via thinning over
//                      diurnal x burst modulation
//  * JobSizeModel    — parallelism (power-of-two biased) and runtime
//                      (clamped log-normal) distributions
//
// Everything is driven by psched::util::Rng, so a seed fully determines a
// trace on every platform.

#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace psched::workload {

/// Deterministic weekly rate-modulation profile with mean exactly 1 over a
/// week: a cosine daily cycle peaking at `peak_hour`, scaled down on
/// weekends. amplitude in [0, 1); weekend_factor > 0.
class DiurnalProfile {
 public:
  DiurnalProfile(double amplitude, double weekend_factor, double peak_hour = 14.0);

  /// Rate multiplier at simulated time t (t=0 is Monday 00:00).
  [[nodiscard]] double rate(SimTime t) const noexcept;

  /// Largest value rate() can take (used for thinning).
  [[nodiscard]] double max_rate() const noexcept;

 private:
  double amplitude_;
  double weekend_factor_;
  double peak_hour_;
  double norm_;  // divides so the weekly mean is 1
};

/// Alternating-renewal burst process: rate multiplier is `burst_multiplier`
/// during "on" intervals and `base` during "off" intervals, with
/// exponentially distributed interval lengths. `base` is derived so the
/// long-run mean multiplier is 1 (load stays calibrated). A multiplier of 1
/// (or on-fraction 0) degenerates to the constant 1 profile.
class BurstProcess {
 public:
  /// on_mean/off_mean are the mean durations (s) of on and off intervals.
  BurstProcess(double burst_multiplier, double on_mean, double off_mean);

  /// Pre-computes the on/off timeline for [0, horizon) with `rng`.
  void materialize(SimTime horizon, util::Rng& rng);

  /// Multiplier at time t; requires materialize() to have covered t.
  [[nodiscard]] double rate(SimTime t) const noexcept;

  [[nodiscard]] double max_rate() const noexcept;
  [[nodiscard]] bool bursty() const noexcept { return multiplier_ > 1.0; }

 private:
  double multiplier_;
  double on_mean_;
  double off_mean_;
  double base_ = 1.0;
  // Sorted start times of intervals; even index = off interval, odd = on.
  std::vector<SimTime> boundaries_;
};

/// Non-homogeneous Poisson arrivals via Lewis-Shedler thinning with rate
/// lambda(t) = base_rate * diurnal(t) * burst(t).
class ArrivalProcess {
 public:
  ArrivalProcess(double base_rate, DiurnalProfile diurnal, BurstProcess burst);

  /// Sample all arrival instants in [0, horizon), ascending.
  [[nodiscard]] std::vector<SimTime> sample(SimTime horizon, util::Rng& rng);

 private:
  double base_rate_;
  DiurnalProfile diurnal_;
  BurstProcess burst_;
};

/// Parallelism distribution: P(1 processor) = serial_fraction; otherwise a
/// power of two in [2, max_procs] with geometrically decaying weights
/// (decay in (0,1]; larger decay = wider jobs more likely).
class ParallelismModel {
 public:
  ParallelismModel(double serial_fraction, double decay, int max_procs);

  [[nodiscard]] int sample(util::Rng& rng) const noexcept;
  [[nodiscard]] double mean() const noexcept;

 private:
  double serial_fraction_;
  std::vector<int> sizes_;
  std::vector<double> weights_;  // not normalized
  double weight_sum_ = 0.0;
};

/// Runtime distribution: log-normal(mu, sigma) clamped to [min, max] secs.
class RuntimeModel {
 public:
  RuntimeModel(double mu, double sigma, double min_runtime, double max_runtime);

  [[nodiscard]] double sample(util::Rng& rng) const noexcept;

  /// Monte-Carlo estimate of the clamped mean with `samples` draws.
  [[nodiscard]] double estimate_mean(util::Rng rng, int samples = 20000) const noexcept;

  /// Returns a copy whose *unclamped* median is scaled by `factor`
  /// (used by load calibration).
  [[nodiscard]] RuntimeModel scaled(double factor) const;

  [[nodiscard]] double min_runtime() const noexcept { return min_; }
  [[nodiscard]] double max_runtime() const noexcept { return max_; }

 private:
  double mu_;
  double sigma_;
  double min_;
  double max_;
};

}  // namespace psched::workload
