#include "workload/workflow.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace psched::workload {

namespace {

double round_up(double x, double step) { return std::ceil(x / step) * step; }

/// Emit one task; returns its id.
JobId emit_task(std::vector<Job>& jobs, JobId& next_id, const WorkflowConfig& c,
                SimTime submit, WorkflowId workflow, UserId user,
                std::vector<JobId> deps, util::Rng& rng) {
  Job task;
  task.id = next_id++;
  task.submit = submit;
  task.runtime = std::clamp(rng.lognormal(c.task_runtime_mu, c.task_runtime_sigma),
                            c.runtime_min, c.runtime_max);
  task.procs = 1;
  if (!rng.bernoulli(c.serial_fraction)) {
    int width = 2;
    while (width < c.max_procs && rng.bernoulli(0.5)) width *= 2;
    task.procs = std::min(width, c.max_procs);
  }
  const double blowup = std::pow(10.0, rng.uniform(0.0, c.est_exponent));
  task.estimate = std::min(c.runtime_max, round_up(task.runtime * blowup, c.est_round));
  task.user = user;
  task.workflow = workflow;
  task.deps = std::move(deps);
  jobs.push_back(std::move(task));
  return jobs.back().id;
}

void emit_chain(std::vector<Job>& jobs, JobId& next_id, const WorkflowConfig& c,
                SimTime submit, WorkflowId wf, UserId user, int tasks, util::Rng& rng) {
  JobId prev = kInvalidJob;
  for (int t = 0; t < tasks; ++t) {
    std::vector<JobId> deps;
    if (prev != kInvalidJob) deps.push_back(prev);
    prev = emit_task(jobs, next_id, c, submit, wf, user, std::move(deps), rng);
  }
}

void emit_fork_join(std::vector<Job>& jobs, JobId& next_id, const WorkflowConfig& c,
                    SimTime submit, WorkflowId wf, UserId user, int tasks,
                    util::Rng& rng) {
  // 1 entry + N parallel + 1 exit; N = tasks - 2 (>= 1).
  const int fan = std::max(1, tasks - 2);
  const JobId entry = emit_task(jobs, next_id, c, submit, wf, user, {}, rng);
  std::vector<JobId> middle;
  middle.reserve(static_cast<std::size_t>(fan));
  for (int t = 0; t < fan; ++t)
    middle.push_back(emit_task(jobs, next_id, c, submit, wf, user, {entry}, rng));
  emit_task(jobs, next_id, c, submit, wf, user, std::move(middle), rng);
}

void emit_layered(std::vector<Job>& jobs, JobId& next_id, const WorkflowConfig& c,
                  SimTime submit, WorkflowId wf, UserId user, int tasks,
                  util::Rng& rng) {
  const int layers = std::max(
      2, static_cast<int>(rng.uniform_int(2, std::max(2, c.layers_max))));
  std::vector<std::vector<JobId>> levels(static_cast<std::size_t>(layers));
  // Distribute tasks over layers, at least one per layer.
  for (int layer = 0; layer < layers; ++layer)
    levels[static_cast<std::size_t>(layer)] = {};
  for (int t = 0; t < tasks; ++t) {
    const auto layer = static_cast<std::size_t>(
        t < layers ? t : rng.uniform_int(0, layers - 1));
    levels[layer].push_back(kInvalidJob);  // placeholder; filled below
  }
  std::vector<JobId> previous;
  for (auto& level : levels) {
    std::vector<JobId> current;
    current.reserve(level.size());
    for (std::size_t i = 0; i < level.size(); ++i) {
      std::vector<JobId> deps;
      if (!previous.empty()) {
        const auto fanin = static_cast<std::size_t>(rng.uniform_int(
            1, std::min<std::int64_t>(c.max_fanin,
                                      static_cast<std::int64_t>(previous.size()))));
        std::unordered_set<JobId> chosen;
        while (chosen.size() < fanin) {
          chosen.insert(previous[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(previous.size()) - 1))]);
        }
        // psched-lint: order-insensitive(snapshot is sorted on the next line)
        deps.assign(chosen.begin(), chosen.end());
        std::sort(deps.begin(), deps.end());
      }
      current.push_back(
          emit_task(jobs, next_id, c, submit, wf, user, std::move(deps), rng));
    }
    previous = std::move(current);
  }
}

}  // namespace

Trace generate_workflows(const WorkflowConfig& c, std::uint64_t seed) {
  PSCHED_ASSERT(c.workflows_per_day > 0.0 && c.duration_days > 0.0);
  PSCHED_ASSERT(c.min_tasks >= 1 && c.max_tasks >= c.min_tasks);
  PSCHED_ASSERT(c.max_procs >= 1 && c.max_procs <= c.system_cpus);
  util::Rng root(seed);
  util::Rng arrival_rng = root.split();
  util::Rng task_rng = root.split();

  const double horizon = c.duration_days * 24.0 * 3600.0;
  ArrivalProcess arrivals(c.workflows_per_day / 86400.0,
                          DiurnalProfile(c.diurnal_amplitude, c.weekend_factor),
                          BurstProcess(1.0, 0.0, 0.0));
  const std::vector<SimTime> submits = arrivals.sample(horizon, arrival_rng);

  std::vector<Job> jobs;
  JobId next_id = 0;
  WorkflowId next_workflow = 0;
  const std::vector<double> weights{c.chain_weight, c.forkjoin_weight,
                                    c.layered_weight};
  for (const SimTime submit : submits) {
    const WorkflowId wf = next_workflow++;
    const auto user =
        static_cast<UserId>(task_rng.uniform_int(0, c.num_users - 1));
    const auto tasks =
        static_cast<int>(task_rng.uniform_int(c.min_tasks, c.max_tasks));
    switch (static_cast<DagShape>(task_rng.weighted_index(weights))) {
      case DagShape::kChain:
        emit_chain(jobs, next_id, c, submit, wf, user, tasks, task_rng);
        break;
      case DagShape::kForkJoin:
        emit_fork_join(jobs, next_id, c, submit, wf, user, tasks, task_rng);
        break;
      case DagShape::kLayered:
        emit_layered(jobs, next_id, c, submit, wf, user, tasks, task_rng);
        break;
    }
  }
  return Trace(c.name, c.system_cpus, std::move(jobs));
}

std::string validate_workflows(const Trace& trace) {
  std::unordered_map<JobId, const Job*> by_id;
  for (const Job& j : trace.jobs()) {
    if (!by_id.emplace(j.id, &j).second) return "duplicate job id";
  }
  for (const Job& j : trace.jobs()) {
    for (const JobId dep : j.deps) {
      const auto it = by_id.find(dep);
      if (it == by_id.end()) return "dependency on unknown job";
      if (dep == j.id) return "self-dependency";
      if (it->second->workflow != j.workflow) return "cross-workflow dependency";
      // Generators emit dependencies before dependents: id order is a
      // topological order, which also rules out cycles.
      if (dep >= j.id) return "forward dependency (not topologically ordered)";
      if (it->second->submit > j.submit) return "dependency submitted later";
    }
  }
  return {};
}

}  // namespace psched::workload
