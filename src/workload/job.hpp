#pragma once
// The immutable workload job record. Scheduling state (wait, start, finish)
// lives in the engine; a Job only describes what the user submitted.
//
// The model is the paper's: rigid parallel jobs. A job requires `procs`
// single-core VMs simultaneously for `runtime` seconds; no preemption,
// no migration, no moldability.

#include <string>
#include <vector>

#include "util/types.hpp"

namespace psched::workload {

/// Grouping id for workflow tasks; kNoWorkflow marks an independent job.
using WorkflowId = std::int64_t;
inline constexpr WorkflowId kNoWorkflow = -1;

struct Job {
  JobId id = kInvalidJob;
  SimTime submit = 0.0;        ///< submission time, seconds since trace start
  SimDuration runtime = 0.0;   ///< actual runtime, seconds (> 0)
  int procs = 1;               ///< number of processors (VMs) required (>= 1)
  SimDuration estimate = 0.0;  ///< user-provided runtime estimate, seconds
  UserId user = 0;             ///< submitting user (for the k-NN predictor)

  // Workflow support (the paper's future-work item #4). A job becomes
  // *eligible* for scheduling only once all jobs in `deps` have completed;
  // waiting time (and bounded slowdown) is measured from eligibility.
  std::vector<JobId> deps;            ///< ids of prerequisite jobs (same trace)
  WorkflowId workflow = kNoWorkflow;  ///< workflow this task belongs to
};

/// Processor-seconds of real work in the job (the RJ contribution).
[[nodiscard]] inline double work_of(const Job& j) noexcept {
  return static_cast<double>(j.procs) * j.runtime;
}

/// Bounded slowdown of a job that waited `wait` seconds, with runtime bound
/// `bound` (the paper uses 10 s, following Feitelson et al.):
///   BSD = max(1, (wait + runtime) / max(runtime, bound))
[[nodiscard]] double bounded_slowdown(double wait, double runtime, double bound = 10.0) noexcept;

/// Human-readable one-line description (diagnostics/logging).
[[nodiscard]] std::string to_string(const Job& j);

}  // namespace psched::workload
