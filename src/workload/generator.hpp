#pragma once
// Synthetic PWA-like trace generation.
//
// The paper evaluates on four Parallel Workloads Archive traces (KTH-SP2,
// SDSC-SP2, DAS2-fs0, LPC-EGEE) that are not redistributable with this
// repository. The generator substitutes statistically calibrated synthetic
// traces: each archetype fixes the arrival rate (jobs/month from the paper's
// Table 1), the arrival *shape* (stable daily cycle vs. bursty MMPP, per
// Figure 3), the parallelism mix, and a runtime distribution whose scale is
// auto-calibrated so the offered load matches Table 1. See DESIGN.md
// ("Paper -> substitution map").

#include <string>
#include <vector>

#include "workload/distributions.hpp"
#include "workload/trace.hpp"

namespace psched::workload {

/// Full parameterization of one synthetic trace.
struct GeneratorConfig {
  std::string name = "synthetic";
  int system_cpus = 128;          ///< original system size (for load)
  double duration_days = 30.0;    ///< trace horizon
  double jobs_per_month = 30000;  ///< mean arrival rate (30-day months)
  double target_load = 0.5;       ///< offered load to calibrate runtimes to

  // Arrival shape.
  double diurnal_amplitude = 0.5;   ///< 0 = flat; ~0.8 = strong day/night
  double weekend_factor = 0.7;      ///< weekend arrival-rate scale
  double burst_multiplier = 1.0;    ///< 1 = no bursts
  double burst_on_mean = 900.0;     ///< mean burst length (s)
  double burst_off_mean = 20000.0;  ///< mean gap between bursts (s)

  // Job sizes.
  double serial_fraction = 0.3;  ///< P(procs == 1)
  double parallel_decay = 0.8;   ///< decay of power-of-two widths
  int max_procs = 64;            ///< widest generated job (after cleaning)
  double frac_wide = 0.0;        ///< fraction of jobs wider than max_procs
                                 ///< (removed by cleaning; models Table 1's
                                 ///<  "% of jobs <= 64 procs" column)

  // Runtimes: log-normal(mu, sigma) clamped to [min, max]; mu is then
  // shifted by calibration to hit target_load. runtime_sigma is the TOTAL
  // log-spread across all jobs; user_runtime_spread is the within-user
  // share of it. Production users resubmit near-identical jobs (that is
  // why Tsafrir's 2-NN predictor reaches ~50% accuracy on PWA traces), so
  // most of the spread sits *across* users: each user draws a persistent
  // runtime scale of sigma_across = sqrt(sigma^2 - within^2), and the
  // user's jobs vary around it with sigma = user_runtime_spread. The total
  // log-variance — and hence the calibrated mean — is unchanged.
  double runtime_sigma = 2.0;
  double user_runtime_spread = 0.5;
  double runtime_min = 10.0;
  double runtime_max = 5.0 * 24.0 * 3600.0;
  // Long-horizon non-stationarity. Multi-month production traces are not
  // statistically stationary: the job mix drifts as projects start and end
  // (this drift is what portfolio scheduling exploits — no single policy
  // fits every regime). Every `regime_days` the runtime scale and the
  // serial-job fraction jitter by `regime_strength` (log-normal / additive
  // respectively). 0 disables.
  double regime_days = 7.0;
  double regime_strength = 0.8;
  // With heavy-tailed runtimes, the *realized* load of a short trace slice
  // varies a lot around its expectation. When true (default), runtimes are
  // rescaled post-hoc by a single factor so the generated slice's offered
  // load matches target_load exactly (Table-1 fidelity at any horizon).
  bool calibrate_exact = true;

  // User population (for the k-NN runtime predictor).
  int num_users = 128;
  double user_zipf_s = 1.2;  ///< activity skew across users

  // User estimate model: estimate = clamp(runtime * 10^U(0, est_exponent)),
  // rounded up to est_round seconds, clamped to runtime_max. The paper
  // reports user estimates "orders of magnitude larger" than runtimes.
  double est_exponent = 2.0;
  double est_round = 300.0;
};

/// Generates a deterministic trace from a config and a seed.
class TraceGenerator {
 public:
  explicit TraceGenerator(GeneratorConfig config);

  /// Generate the raw trace (includes the frac_wide jobs wider than
  /// max_procs; apply Trace::cleaned() for the experiment input).
  [[nodiscard]] Trace generate(std::uint64_t seed) const;

  [[nodiscard]] const GeneratorConfig& config() const noexcept { return config_; }

 private:
  GeneratorConfig config_;
};

/// The four paper-trace archetypes, calibrated to Table 1 / Figure 3.
/// `duration_days` scales every archetype's horizon (the paper runs 9-24
/// months; benches default to weeks so a full pass stays fast).
[[nodiscard]] GeneratorConfig kth_sp2_like(double duration_days);
[[nodiscard]] GeneratorConfig sdsc_sp2_like(double duration_days);
[[nodiscard]] GeneratorConfig das2_fs0_like(double duration_days);
[[nodiscard]] GeneratorConfig lpc_egee_like(double duration_days);

/// All four archetypes, in the paper's order.
[[nodiscard]] std::vector<GeneratorConfig> paper_archetypes(double duration_days);

/// Convenience: generate + clean all four paper traces with per-trace seeds
/// derived from `seed`.
[[nodiscard]] std::vector<Trace> paper_traces(double duration_days, std::uint64_t seed,
                                              int max_procs = 64);

}  // namespace psched::workload
