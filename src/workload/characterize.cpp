#include "workload/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace psched::workload {

TraceProfile characterize(const Trace& trace) {
  TraceProfile p;
  p.name = trace.name();
  p.jobs = trace.size();
  if (trace.empty()) return p;

  const auto& jobs = trace.jobs();

  // Runtimes.
  std::vector<double> runtimes;
  runtimes.reserve(jobs.size());
  for (const Job& j : jobs) runtimes.push_back(j.runtime);
  p.runtime_p50 = util::percentile(runtimes, 50.0);
  p.runtime_p90 = util::percentile(runtimes, 90.0);
  p.runtime_p99 = util::percentile(runtimes, 99.0);
  p.runtime_mean = util::mean_of(runtimes);

  // Parallelism.
  std::size_t serial = 0;
  double procs_sum = 0.0;
  for (const Job& j : jobs) {
    serial += j.procs == 1;
    procs_sum += j.procs;
    p.max_procs = std::max(p.max_procs, j.procs);
    const auto bucket = static_cast<std::size_t>(
        std::floor(std::log2(static_cast<double>(std::max(j.procs, 1)))));
    if (bucket >= p.width_histogram.size()) p.width_histogram.resize(bucket + 1, 0);
    ++p.width_histogram[bucket];
  }
  p.serial_fraction = static_cast<double>(serial) / static_cast<double>(jobs.size());
  p.mean_procs = procs_sum / static_cast<double>(jobs.size());

  // Arrival process.
  const double duration = std::max(trace.duration(), 1.0);
  p.jobs_per_day = static_cast<double>(jobs.size()) / (duration / 86400.0);
  util::TimeSeriesCounter counts(600.0);
  std::array<std::size_t, 24> hourly{};
  for (const Job& j : jobs) {
    counts.add(j.submit);
    const auto hour =
        static_cast<std::size_t>(std::fmod(j.submit, 86400.0) / 3600.0) % 24;
    ++hourly[hour];
  }
  p.fano_10min = counts.cv2() * counts.mean_count();
  const double hourly_mean = static_cast<double>(jobs.size()) / 24.0;
  for (std::size_t h = 0; h < 24; ++h)
    p.hourly_profile[h] = static_cast<double>(hourly[h]) / hourly_mean;

  // Users.
  std::unordered_map<UserId, std::size_t> per_user;
  for (const Job& j : jobs) ++per_user[j.user];
  p.users = per_user.size();
  std::size_t top = 0;
  // psched-lint: order-insensitive(max over counts is commutative)
  for (const auto& [user, count] : per_user) top = std::max(top, count);
  p.top_user_share = static_cast<double>(top) / static_cast<double>(jobs.size());

  // Estimates.
  double blowup_sum = 0.0;
  for (const Job& j : jobs)
    blowup_sum += j.runtime > 0.0 && j.estimate > 0.0 ? j.estimate / j.runtime : 1.0;
  p.mean_estimate_blowup = blowup_sum / static_cast<double>(jobs.size());
  return p;
}

std::string to_string(const TraceProfile& p) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%s: %zu jobs, %.0f/day, Fano %.2f\n",
                p.name.c_str(), p.jobs, p.jobs_per_day, p.fano_10min);
  out += line;
  std::snprintf(line, sizeof line,
                "  runtime  p50 %.0fs  p90 %.0fs  p99 %.0fs  mean %.0fs\n",
                p.runtime_p50, p.runtime_p90, p.runtime_p99, p.runtime_mean);
  out += line;
  std::snprintf(line, sizeof line,
                "  widths   serial %.0f%%  mean %.1f  max %d\n",
                100.0 * p.serial_fraction, p.mean_procs, p.max_procs);
  out += line;
  std::snprintf(line, sizeof line,
                "  users    %zu (top user %.1f%% of jobs); estimate blow-up x%.1f\n",
                p.users, 100.0 * p.top_user_share, p.mean_estimate_blowup);
  out += line;
  return out;
}

}  // namespace psched::workload
