#include "workload/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace psched::workload {

namespace {
constexpr double kDay = 24.0 * 3600.0;
constexpr double kWeek = 7.0 * kDay;
}  // namespace

DiurnalProfile::DiurnalProfile(double amplitude, double weekend_factor, double peak_hour)
    : amplitude_(amplitude), weekend_factor_(weekend_factor), peak_hour_(peak_hour) {
  PSCHED_ASSERT(amplitude >= 0.0 && amplitude < 1.0);
  PSCHED_ASSERT(weekend_factor > 0.0);
  // Daily cosine has mean 1 over a day, so the weekly mean is just the mean
  // weekday/weekend scale.
  norm_ = (5.0 + 2.0 * weekend_factor_) / 7.0;
}

double DiurnalProfile::rate(SimTime t) const noexcept {
  const double tod = std::fmod(t, kDay) / 3600.0;                 // hour of day
  const double dow = std::fmod(t, kWeek) / kDay;                  // day of week, 0=Mon
  const double daily = 1.0 + amplitude_ * std::cos(2.0 * M_PI * (tod - peak_hour_) / 24.0);
  const double weekly = dow >= 5.0 ? weekend_factor_ : 1.0;
  return daily * weekly / norm_;
}

double DiurnalProfile::max_rate() const noexcept {
  return (1.0 + amplitude_) * std::max(1.0, weekend_factor_) / norm_;
}

BurstProcess::BurstProcess(double burst_multiplier, double on_mean, double off_mean)
    : multiplier_(burst_multiplier), on_mean_(on_mean), off_mean_(off_mean) {
  PSCHED_ASSERT(burst_multiplier >= 1.0);
  if (bursty()) {
    PSCHED_ASSERT(on_mean > 0.0 && off_mean > 0.0);
    // Long-run mean multiplier must be 1:
    //   (off_mean * base + on_mean * multiplier) / (on_mean + off_mean) = 1
    base_ = (on_mean_ + off_mean_ - on_mean_ * multiplier_) / off_mean_;
    PSCHED_ASSERT_MSG(base_ >= 0.0,
                      "burst multiplier too large for the on/off duty cycle");
  }
}

void BurstProcess::materialize(SimTime horizon, util::Rng& rng) {
  boundaries_.clear();
  if (!bursty()) return;
  SimTime t = 0.0;
  boundaries_.push_back(t);  // start in an off interval
  bool on = false;
  while (t < horizon) {
    t += rng.exponential(1.0 / (on ? on_mean_ : off_mean_));
    boundaries_.push_back(t);
    on = !on;
  }
}

double BurstProcess::rate(SimTime t) const noexcept {
  if (!bursty()) return 1.0;
  // Index of the interval containing t; even -> off, odd -> on.
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
  const auto idx = static_cast<std::size_t>(it - boundaries_.begin());
  if (idx == 0 || idx > boundaries_.size()) return base_;
  return (idx - 1) % 2 == 1 ? multiplier_ : base_;
}

double BurstProcess::max_rate() const noexcept { return bursty() ? multiplier_ : 1.0; }

ArrivalProcess::ArrivalProcess(double base_rate, DiurnalProfile diurnal, BurstProcess burst)
    : base_rate_(base_rate), diurnal_(diurnal), burst_(std::move(burst)) {
  PSCHED_ASSERT(base_rate > 0.0);
}

std::vector<SimTime> ArrivalProcess::sample(SimTime horizon, util::Rng& rng) {
  burst_.materialize(horizon, rng);
  const double lambda_max = base_rate_ * diurnal_.max_rate() * burst_.max_rate();
  std::vector<SimTime> arrivals;
  arrivals.reserve(static_cast<std::size_t>(base_rate_ * horizon * 1.1) + 16);
  SimTime t = 0.0;
  for (;;) {
    t += rng.exponential(lambda_max);
    if (t >= horizon) break;
    const double lambda_t = base_rate_ * diurnal_.rate(t) * burst_.rate(t);
    if (rng.uniform() * lambda_max < lambda_t) arrivals.push_back(t);
  }
  return arrivals;
}

ParallelismModel::ParallelismModel(double serial_fraction, double decay, int max_procs)
    : serial_fraction_(serial_fraction) {
  PSCHED_ASSERT(serial_fraction >= 0.0 && serial_fraction <= 1.0);
  PSCHED_ASSERT(decay > 0.0 && decay <= 1.0);
  PSCHED_ASSERT(max_procs >= 1);
  double w = 1.0;
  for (int size = 2; size <= max_procs; size *= 2) {
    sizes_.push_back(size);
    weights_.push_back(w);
    weight_sum_ += w;
    w *= decay;
  }
}

int ParallelismModel::sample(util::Rng& rng) const noexcept {
  if (sizes_.empty() || rng.bernoulli(serial_fraction_)) return 1;
  return sizes_[rng.weighted_index(weights_)];
}

double ParallelismModel::mean() const noexcept {
  if (sizes_.empty()) return 1.0;
  double m = 0.0;
  for (std::size_t i = 0; i < sizes_.size(); ++i)
    m += static_cast<double>(sizes_[i]) * weights_[i] / weight_sum_;
  return serial_fraction_ + (1.0 - serial_fraction_) * m;
}

RuntimeModel::RuntimeModel(double mu, double sigma, double min_runtime, double max_runtime)
    : mu_(mu), sigma_(sigma), min_(min_runtime), max_(max_runtime) {
  PSCHED_ASSERT(sigma > 0.0);
  PSCHED_ASSERT(min_runtime > 0.0 && max_runtime > min_runtime);
}

double RuntimeModel::sample(util::Rng& rng) const noexcept {
  return std::clamp(rng.lognormal(mu_, sigma_), min_, max_);
}

double RuntimeModel::estimate_mean(util::Rng rng, int samples) const noexcept {
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) sum += sample(rng);
  return sum / samples;
}

RuntimeModel RuntimeModel::scaled(double factor) const {
  PSCHED_ASSERT(factor > 0.0);
  return RuntimeModel(mu_ + std::log(factor), sigma_, min_, max_);
}

}  // namespace psched::workload
