#include "workload/job.hpp"

#include <algorithm>
#include <cstdio>

namespace psched::workload {

double bounded_slowdown(double wait, double runtime, double bound) noexcept {
  const double denom = std::max(runtime, bound);
  if (denom <= 0.0) return 1.0;
  return std::max(1.0, (wait + runtime) / denom);
}

std::string to_string(const Job& j) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "job %lld: submit=%.0fs procs=%d runtime=%.0fs est=%.0fs user=%d",
                static_cast<long long>(j.id), j.submit, j.procs, j.runtime, j.estimate,
                j.user);
  return buf;
}

}  // namespace psched::workload
