#pragma once
// Standard Workload Format (SWF) reader/writer.
//
// SWF is the Parallel Workloads Archive format the paper's traces ship in
// (18 whitespace-separated fields per job, ';' header comments). We
// implement enough of v2.2 to round-trip the fields psched uses, so real
// PWA traces can be dropped in as a substitute for the generated ones.
//
// Field mapping (1-based SWF columns):
//   1  job number         -> Job::id
//   2  submit time        -> Job::submit
//   4  run time           -> Job::runtime
//   5  allocated procs    -> Job::procs (fallback: 8, requested procs)
//   9  requested time     -> Job::estimate (fallback: run time)
//   12 user id            -> Job::user
//   17 preceding job      -> Job::deps (SWF supports at most one
//                            predecessor; multi-dependency DAGs cannot be
//                            represented — write_swf keeps only the first
//                            dependency of each job)

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "workload/trace.hpp"

namespace psched::workload {

/// Thrown on malformed SWF input.
class SwfError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse an SWF stream. `name` labels the trace; `system_cpus` may be 0 to
/// take the value from the `; MaxProcs:` header comment (if present).
/// Jobs with negative runtime (SWF meaning: unknown) are kept with
/// runtime 0 so that Trace::cleaned() drops them, matching the paper.
/// Malformed input — unparseable tokens, NaN/Inf values, or negative
/// fields other than the -1 "unknown" sentinel — throws SwfError naming
/// the offending 1-based line.
[[nodiscard]] Trace read_swf(std::istream& in, std::string name, int system_cpus = 0);

/// Parse an SWF file from disk. Throws SwfError if unreadable.
[[nodiscard]] Trace load_swf(const std::string& path, std::string name = {},
                             int system_cpus = 0);

/// Write a trace as SWF (fields psched does not model are written as -1).
void write_swf(std::ostream& out, const Trace& trace);

/// Write to a file path. Throws SwfError on IO failure.
void save_swf(const std::string& path, const Trace& trace);

}  // namespace psched::workload
